"""Exception taxonomy with one class missing from ERROR_CODES."""


class ReproError(Exception):
    pass


class SessionError(ReproError):
    pass


class WealthExhaustedError(ReproError):  # seed: WIRE004
    pass
