"""Two locks with one legal nesting: fix.outer may wrap fix.inner.

The lock-graph test fabricates runtime dumps against this tree: the
declared order validates, the reversed order is an LCK101 finding.
"""

from repro.analysis.runtime import make_lock


class Pair:
    def __init__(self):
        self._outer_lock = make_lock("fix.outer")
        self._inner_lock = make_lock("fix.inner")

    def nested(self):
        with self._outer_lock:
            with self._inner_lock:
                return True
