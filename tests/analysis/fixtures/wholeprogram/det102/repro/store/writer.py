"""Stamps a WAL entry with the wall clock — replay would diverge."""

import time


def write_entry(store, payload):
    entry = {"payload": payload, "written_at": time.time()}
    store.append(entry)  # seed: DET102
