"""Whole-program conformance pass: fixtures, drift gate, lock graph.

The ``fixtures/wholeprogram/<case>/`` directories are miniature project
trees, one per rule; each seeds exactly one violation with a trailing
``# seed: <CODE>`` comment, and the harness asserts the pass reports
exactly that set.  The drift gate and the static↔runtime lock-graph
cross-validation are exercised against the real ``src/`` tree, mirroring
what CI runs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis.callgraph import Project
from repro.analysis.core import suppress_by_pragma
from repro.analysis.protocol_model import (
    WIRE_CODES,
    diff_model,
    extract_model,
    model_to_dict,
)
from repro.analysis.whole_program import (
    DET_CODES,
    run_whole_program,
    static_lock_edges,
    validate_lock_dump,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
CASES = Path(__file__).parent / "fixtures" / "wholeprogram"

_SEED = re.compile(r"#\s*seed:\s*([A-Z]+\d+)")


def seeded(case_dir: Path) -> set[tuple[str, int, str]]:
    expected = set()
    for path in case_dir.rglob("*.py"):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for code in _SEED.findall(line):
                expected.add((path.name, lineno, code))
    return expected


@pytest.mark.parametrize(
    "case", sorted(p.name for p in CASES.iterdir() if p.is_dir())
)
def test_fixture_findings_match_seeds(case):
    violations = run_whole_program([str(CASES / case)])
    reported = {(Path(v.path).name, v.line, v.code) for v in violations}
    assert reported == seeded(CASES / case)


def test_fixture_corpus_covers_every_wire_and_det_code():
    codes = set()
    for case_dir in CASES.iterdir():
        if case_dir.is_dir():
            codes |= {code for _, _, code in seeded(case_dir)}
    shipped = set(WIRE_CODES) | set(DET_CODES)
    assert shipped <= codes, f"codes without a fixture: {shipped - codes}"


def test_src_is_whole_program_clean():
    assert run_whole_program([str(SRC)]) == []


def test_cli_whole_program_exits_zero():
    assert cli_main(["lint", str(SRC), "--whole-program"]) == 0


def test_whole_program_findings_respect_pragmas(tmp_path):
    tree = tmp_path / "repro" / "api"
    tree.mkdir(parents=True)
    (tree / "protocol.py").write_text(
        "class Command:\n"
        "    cmd = 'command'\n"
        "class Show(Command):\n"
        "    cmd = 'show'  # reprolint: allow(WIRE002) — fixture\n"
    )
    (tree / "client.py").write_text("x = 1\n")
    raw = run_whole_program([str(tmp_path)])
    assert [v.code for v in raw] == ["WIRE002"]
    # The pragma is on the class's `cmd` line, not its def line — move it.
    (tree / "protocol.py").write_text(
        "class Command:\n"
        "    cmd = 'command'\n"
        "class Show(Command):  # reprolint: allow(WIRE002) — fixture\n"
        "    cmd = 'show'\n"
    )
    assert suppress_by_pragma(run_whole_program([str(tmp_path)])) == []


# -- protocol model drift gate ----------------------------------------------


def test_committed_protocol_model_matches_extraction():
    """The CI drift gate, in-repo: protocol_model.json is regenerated
    whenever the wire contract changes."""
    committed = json.loads((REPO_ROOT / "protocol_model.json").read_text())
    extracted = model_to_dict(extract_model(Project.from_paths([str(SRC)])))
    assert diff_model(committed, extracted) == []


def test_drift_gate_catches_removed_error_code():
    committed = json.loads((REPO_ROOT / "protocol_model.json").read_text())
    del committed["error_codes"]["StoreError"]
    extracted = model_to_dict(extract_model(Project.from_paths([str(SRC)])))
    drift = diff_model(committed, extracted)
    assert any("StoreError" in line for line in drift)


def test_drift_gate_catches_removed_dispatch_arm():
    committed = json.loads((REPO_ROOT / "protocol_model.json").read_text())
    committed["dispatched"].remove("star")
    extracted = model_to_dict(extract_model(Project.from_paths([str(SRC)])))
    assert any("dispatched" in line for line in diff_model(committed, extracted))


def test_protocol_cli_dump_and_check(tmp_path, capsys):
    assert cli_main(["protocol", "dump", "--src", str(SRC)]) == 0
    dumped = capsys.readouterr().out
    model_file = tmp_path / "model.json"
    model_file.write_text(dumped)
    assert cli_main(
        ["protocol", "dump", "--src", str(SRC), "--check", str(model_file)]
    ) == 0
    stale = json.loads(dumped)
    stale["verbs"].pop("pipeline")
    model_file.write_text(json.dumps(stale))
    assert cli_main(
        ["protocol", "dump", "--src", str(SRC), "--check", str(model_file)]
    ) == 1
    assert "drift" in capsys.readouterr().out


def test_model_declares_v2_only_verbs():
    model = extract_model(Project.from_paths([str(SRC)]))
    data = model_to_dict(model)
    assert data["v2_only"] == ["pipeline", "recover"]
    assert data["verbs"]["pipeline"]["min_version"] == 2
    assert data["verbs"]["show"]["min_version"] == 1


# -- static lock-order graph ------------------------------------------------


def test_static_graph_predicts_known_runtime_edges():
    """Regression floor: orders the service tier demonstrably exhibits
    (session lock wrapping store/engine/broker work, router wrapping a
    local worker) must stay in the extracted graph."""
    static = static_lock_edges(Project.from_paths([str(SRC)]))
    for edge in [
        ("manager.session", "store.jsonl"),
        ("manager.session", "store.memory"),
        ("manager.session", "store.idem-index"),
        ("manager.session", "engine.cache"),
        ("manager.session", "events.broker"),
        ("service.admission", "manager.registry"),
        ("router.session", "router.registry"),
        ("router.session", "manager.session"),
    ]:
        assert edge in static, edge


def test_static_graph_has_no_self_edges():
    static = static_lock_edges(Project.from_paths([str(SRC)]))
    assert not [e for e in static if e[0] == e[1]]


def _write_dump(path: Path, edges: list[list[str]]) -> None:
    path.write_text(json.dumps({"pid": 1, "edges": edges}) + "\n")


def test_lock_dump_validation_accepts_predicted_order(tmp_path):
    dump = tmp_path / "dump.jsonl"
    _write_dump(dump, [["fix.outer", "fix.inner"]])
    project = Project.from_paths([str(CASES / "lockgraph")])
    violations, _ = validate_lock_dump(project, str(dump))
    assert violations == []


def test_lock_dump_validation_flags_unpredicted_order(tmp_path):
    dump = tmp_path / "dump.jsonl"
    _write_dump(dump, [["fix.inner", "fix.outer"]])
    project = Project.from_paths([str(CASES / "lockgraph")])
    violations, _ = validate_lock_dump(project, str(dump))
    assert [v.code for v in violations] == ["LCK101"]
    assert "fix.inner" in violations[0].message


def test_lock_dump_validation_skips_foreign_lock_classes(tmp_path):
    """Ad-hoc locks fabricated by tests are outside the analyzed tree
    and must not fail the gate — they surface as warnings instead."""
    dump = tmp_path / "dump.jsonl"
    _write_dump(dump, [["test.a", "test.b"]])
    project = Project.from_paths([str(CASES / "lockgraph")])
    violations, warnings = validate_lock_dump(project, str(dump))
    assert violations == []
    assert any("outside the analyzed tree" in w for w in warnings)


def test_cli_check_lock_dump(tmp_path, capsys):
    dump = tmp_path / "dump.jsonl"
    _write_dump(dump, [["fix.inner", "fix.outer"]])
    case = str(CASES / "lockgraph")
    assert cli_main(["lint", case, "--check-lock-dump", str(dump)]) == 1
    assert "LCK101" in capsys.readouterr().out
    _write_dump(dump, [["fix.outer", "fix.inner"]])
    assert cli_main(["lint", case, "--check-lock-dump", str(dump)]) == 0


# -- sarif ------------------------------------------------------------------


def test_sarif_output_shape(capsys):
    fixtures = Path(__file__).parent / "fixtures" / "repro"
    assert cli_main(["lint", str(fixtures), "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert run["results"], "expected findings from the bad_* fixtures"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {r["ruleId"] for r in run["results"]} <= rule_ids
    loc = run["results"][0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] >= 1
