"""Unit tests for the runtime lock-discipline detector.

The global acquisition-order graph is process-wide state (order is a
whole-program property), so every test resets it and uses its own lock
class names.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import runtime as rt


@pytest.fixture(autouse=True)
def lock_check_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
    rt.reset_order_graph()
    yield
    rt.reset_order_graph()


def test_factories_respect_env(monkeypatch):
    assert isinstance(rt.make_lock("t.plain"), rt.CheckedLock)
    assert isinstance(rt.make_rlock("t.plain"), rt.CheckedRLock)
    monkeypatch.setenv("REPRO_LOCK_CHECK", "0")
    assert isinstance(rt.make_lock("t.plain"), type(threading.Lock()))


def test_consistent_order_is_silent():
    a, b = rt.make_lock("t1.a"), rt.make_lock("t1.b")
    for _ in range(3):
        with a, b:
            pass
    assert rt.lock_events() == []


def test_order_inversion_raises_and_records():
    a, b = rt.make_lock("t2.a"), rt.make_lock("t2.b")
    with a, b:
        pass
    with pytest.raises(rt.LockDisciplineError, match="inversion"), b:
        with a:
            pass  # pragma: no cover - never reached
    events = rt.lock_events()
    assert len(events) == 1
    assert events[0]["kind"] == "order-inversion"
    assert events[0]["acquiring"] == "t2.a"


def test_transitive_inversion_detected():
    a, b, c = rt.make_lock("t3.a"), rt.make_lock("t3.b"), rt.make_lock("t3.c")
    with a, b:
        pass
    with b, c:
        pass
    with pytest.raises(rt.LockDisciplineError, match="inversion"), c:
        with a:
            pass  # pragma: no cover - never reached


def test_same_class_nesting_is_inversion():
    """Two *instances* of one lock class nested — the two-session deadlock
    shape (thread 1: s1→s2, thread 2: s2→s1) — is flagged eagerly."""
    s1, s2 = rt.make_rlock("t4.session"), rt.make_rlock("t4.session")
    with pytest.raises(rt.LockDisciplineError, match="inversion"), s1:
        with s2:
            pass  # pragma: no cover - never reached


def test_rlock_reentry_is_silent():
    lock = rt.make_rlock("t5.r")
    with lock, lock:
        with lock:
            pass
    assert rt.lock_events() == []
    assert not lock.held_by_current_thread()


def test_nonreentrant_reacquire_is_self_deadlock():
    lock = rt.make_lock("t6.plain")
    with pytest.raises(rt.LockDisciplineError, match="self-deadlock"), lock:
        lock.acquire()  # pragma: no cover - raises before blocking
    assert rt.lock_events()[0]["kind"] == "self-deadlock"


def test_threads_have_independent_held_sets():
    a, b = rt.make_lock("t7.a"), rt.make_lock("t7.b")
    errors: list[Exception] = []

    def use_b():
        try:
            with b:
                pass
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with a:
        worker = threading.Thread(target=use_b)
        worker.start()
        worker.join()
    assert errors == []
    # No a→b edge was committed (different threads), so b→a stays legal.
    with b, a:
        pass
    assert rt.lock_events() == []


class _Managed:
    def __init__(self, lock):
        self.lock = lock


@rt.locked_helper
def _summary_locked(managed):
    return managed


def test_locked_helper_accepts_held_lock():
    managed = _Managed(rt.make_rlock("t8.session"))
    with managed.lock:
        assert _summary_locked(managed) is managed
    assert rt.lock_events() == []


def test_locked_helper_rejects_lock_free_entry():
    managed = _Managed(rt.make_rlock("t9.session"))
    with pytest.raises(rt.LockDisciplineError, match="entered lock-free"):
        _summary_locked(managed)
    events = rt.lock_events()
    assert events and events[0]["kind"] == "unlocked-entry"


def test_locked_helper_rejects_wrong_lock():
    managed = _Managed(rt.make_rlock("t10.session"))
    other = rt.make_lock("t10.other")
    with other, pytest.raises(rt.LockDisciplineError, match="t10.session"):
        _summary_locked(managed)


def test_locked_helper_is_noop_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_CHECK", "")
    managed = _Managed(rt.make_rlock("t11.session"))
    assert _summary_locked(managed) is managed


def test_clear_events_keeps_order_graph():
    a, b = rt.make_lock("t12.a"), rt.make_lock("t12.b")
    with a, b:
        pass
    rt.clear_lock_events()
    with pytest.raises(rt.LockDisciplineError), b:
        with a:
            pass  # pragma: no cover - never reached


def test_order_graph_snapshot_survives_reset():
    a, b = rt.make_lock("t13.a"), rt.make_lock("t13.b")
    with a, b:
        pass
    assert ("t13.a", "t13.b") in rt.order_graph()
    rt.reset_order_graph()
    # The dump export reports everything ever observed: a test resetting
    # for isolation must not erase history the cross-validator needs.
    assert ("t13.a", "t13.b") in rt.order_graph()


def test_dump_order_graph_appends_jsonl(tmp_path):
    a, b = rt.make_lock("t14.a"), rt.make_lock("t14.b")
    with a, b:
        pass
    dump = tmp_path / "edges.jsonl"
    rt.dump_order_graph(str(dump))
    rt.dump_order_graph(str(dump))  # second process would append, not clobber
    assert len(dump.read_text().splitlines()) == 2
    assert ("t14.a", "t14.b") in rt.load_order_dump(str(dump))


def test_dump_registered_at_exit_when_env_set(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_CHECK_DUMP", str(tmp_path / "d.jsonl"))
    monkeypatch.setattr(rt, "_dump_registered", False)
    rt.make_lock("t15.a")
    assert rt._dump_registered
