"""Pragma grammar, suppression semantics, and pragma self-linting."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import parse_pragmas, run_lint
from repro.analysis.rules import BoundaryRule

VIOLATION = (
    "def f():\n"
    "    try:\n"
    "        return 1\n"
    "    except Exception:{comment}\n"
    "        return None\n"
)


def _lint(tmp_path: Path, source: str, **kwargs):
    path = tmp_path / "sample.py"
    path.write_text(source)
    return run_lint([path], **kwargs)


def codes(report) -> list[str]:
    return [v.code for v in report.violations]


def test_unpragmad_violation_fires(tmp_path):
    assert codes(_lint(tmp_path, VIOLATION.format(comment=""))) == ["EXC001"]


@pytest.mark.parametrize("comment", [
    "  # reprolint: allow(boundary) — declared test boundary",
    "  # reprolint: allow(boundary) - declared test boundary",
    "  # reprolint: allow(boundary): declared test boundary",
    "  # reprolint: allow(EXC001) — suppression by specific code",
    "  # reprolint: allow(boundary, determinism) — multiple rules",
    "  # noqa: BLE001 - reprolint: allow(boundary) — shares a noqa comment",
])
def test_pragma_suppresses_same_line(tmp_path, comment):
    report = _lint(tmp_path, VIOLATION.format(comment=comment))
    # The multi-rule variant leaves `determinism` unused → PRAGMA002;
    # single-rule pragmas must lint completely clean.
    assert "EXC001" not in codes(report)
    if "determinism" not in comment:
        assert report.clean, report.render_text()


def test_pragma_without_reason_is_flagged(tmp_path):
    report = _lint(
        tmp_path, VIOLATION.format(comment="  # reprolint: allow(boundary)")
    )
    assert codes(report) == ["PRAGMA001"]


def test_unused_pragma_is_flagged(tmp_path):
    report = _lint(
        tmp_path,
        "X = 1  # reprolint: allow(boundary) — suppresses nothing here\n",
    )
    assert codes(report) == ["PRAGMA002"]


def test_unknown_rule_name_is_flagged(tmp_path):
    report = _lint(
        tmp_path,
        "X = 1  # reprolint: allow(no-such-rule) — typo'd rule name\n",
    )
    assert codes(report) == ["PRAGMA003"]


def test_pragma_on_other_line_does_not_suppress(tmp_path):
    source = (
        "# reprolint: allow(boundary) — wrong line, must not apply below\n"
        + VIOLATION.format(comment="")
    )
    report = _lint(tmp_path, source)
    assert "EXC001" in codes(report)
    assert "PRAGMA002" in codes(report)


def test_rule_subset_runs_skip_pragma_checks(tmp_path):
    """A pragma for a rule that did not run is not 'unused'."""
    source = VIOLATION.format(
        comment="  # reprolint: allow(boundary) — declared test boundary"
    )
    report = _lint(tmp_path, source, rules=[BoundaryRule()])
    assert report.clean


def test_parse_pragmas_grammar():
    pragmas = parse_pragmas(
        "x = 1  # reprolint: allow(ledger, EXC001) — two targets\n"
        "y = 2  # ordinary comment\n"
    )
    assert len(pragmas) == 1
    assert pragmas[0].line == 1
    assert pragmas[0].rules == ("ledger", "EXC001")
    assert pragmas[0].reason == "two targets"


def test_every_src_pragma_carries_a_reason():
    """Acceptance criterion: all pragmas in src/ have written rationales
    (PRAGMA001 would also fail the repo-clean gate, but assert directly)."""
    src = Path(__file__).resolve().parents[2] / "src"
    found = 0
    for path in src.rglob("*.py"):
        for pragma in parse_pragmas(path.read_text()):
            found += 1
            assert pragma.reason, f"{path}:{pragma.line} pragma without rationale"
    assert found >= 4  # the documented seams + declared boundaries exist
