"""Meta-test: the repository itself passes its own linter.

This is the in-repo twin of the CI gate — `repro lint src/` must exit 0,
through both the library API and the real CLI entry points.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import run_lint
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
#: Every tree the linter owns.  Fixture trees (under tests/) seed
#: deliberate violations and stay out.
LINTED_TREES = [SRC, REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]


def test_src_is_lint_clean():
    report = run_lint([SRC])
    assert report.clean, report.render_text()
    assert report.files > 70  # the sweep actually covered the package


def test_benchmarks_and_examples_are_lint_clean():
    report = run_lint(LINTED_TREES)
    assert report.clean, report.render_text()
    assert report.files > 90  # src + benchmarks + examples all swept


def test_cli_lint_exits_zero(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_cli_lint_exits_nonzero_on_violations(capsys):
    fixtures = Path(__file__).parent / "fixtures"
    assert cli_main(["lint", str(fixtures)]) == 1
    assert "violations" in capsys.readouterr().out


def test_module_entry_point_exits_zero():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: clean" in proc.stdout


def test_list_rules_names_all_five(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("lock-discipline", "determinism", "boundary", "ledger",
                 "frozen-array"):
        assert rule in out
