"""Meta-test: prose protocol docs match the extracted wire contract.

The README's verb table and the :mod:`repro.api` migration notes are the
human-facing copies of ``protocol_model.json``; this pins them to the
machine-readable model so a new verb (or a removed one) cannot ship with
stale docs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import repro.api as api_pkg

REPO_ROOT = Path(__file__).resolve().parents[2]
MODEL = json.loads((REPO_ROOT / "protocol_model.json").read_text())

#: A verb row in the README table: ``| `show` | v1 | ... |``.  The
#: ``| v{N} |`` second cell keeps this from matching other backticked
#: tables (layout, transport axis).
_VERB_ROW = re.compile(r"^\|\s*`([a-z_]+)`\s*\|\s*v([12])\s*\|")


def _readme_verb_rows() -> dict[str, int]:
    rows = {}
    for line in (REPO_ROOT / "README.md").read_text().splitlines():
        m = _VERB_ROW.match(line)
        if m:
            rows[m.group(1)] = int(m.group(2))
    return rows


def test_readme_verb_table_matches_protocol_model():
    rows = _readme_verb_rows()
    assert set(rows) == set(MODEL["verbs"]), (
        "README verb table drifted from protocol_model.json: "
        f"missing={set(MODEL['verbs']) - set(rows)} "
        f"stale={set(rows) - set(MODEL['verbs'])}"
    )


def test_readme_verb_table_versions_match_protocol_model():
    rows = _readme_verb_rows()
    for verb, since in rows.items():
        assert since == MODEL["verbs"][verb]["min_version"], verb


def test_api_migration_notes_mention_every_v2_verb():
    notes = api_pkg.__doc__ or ""
    for verb in MODEL["v2_only"]:
        assert f'"cmd": "{verb}"' in notes, (
            f"v2-only verb {verb!r} missing from the repro.api migration notes"
        )


def test_api_migration_notes_do_not_invent_verbs():
    notes = api_pkg.__doc__ or ""
    mentioned = set(re.findall(r'\{"cmd": "([a-z_]+)"', notes))
    assert mentioned <= set(MODEL["verbs"]), mentioned - set(MODEL["verbs"])
