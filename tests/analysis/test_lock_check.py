"""Regression: real workloads run clean under ``REPRO_LOCK_CHECK=1``.

The satellite contract for the runtime detector — the transport
equivalence drive (manager / per-command service / batched pipeline) and
a durable evict→recover cycle must produce byte-identical decision logs
with *zero* lock-discipline events.  A boundary may swallow the
``LockDisciplineError`` into an INTERNAL envelope, but the event ledger
cannot be fooled, so asserting on it catches violations wherever they
are raised.  (CI additionally runs the whole tier-1 suite and the kill-9
e2es with the flag set.)
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import runtime as rt
from repro.exploration.dataset import Dataset
from repro.exploration.predicate import Eq
from repro.service.manager import (
    PREV_HYPOTHESIS,
    GestureStep,
    SessionManager,
)


@pytest.fixture(autouse=True)
def lock_check(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
    rt.reset_order_graph()
    yield
    assert rt.lock_events() == [], rt.lock_events()
    rt.reset_order_graph()


def _dataset() -> Dataset:
    rng = np.random.default_rng(97531)
    n = 400
    return Dataset(
        {
            "color": rng.choice(("red", "blue", "green"), size=n),
            "shape": rng.choice(("circle", "square"), size=n),
        },
        categorical=["color", "shape"],
        name="lockcheck",
    )


def _gestures() -> list[tuple[GestureStep, ...]]:
    gestures = []
    for category in ("red", "blue", "green", "red", "blue"):
        gestures.append((
            GestureStep("show", attribute="shape", where=Eq("color", category)),
            GestureStep("star", hypothesis_id=PREV_HYPOTHESIS),
            GestureStep("show", attribute="color", where=Eq("shape", "circle")),
        ))
    return gestures


def _checked(manager: SessionManager) -> None:
    assert isinstance(manager._registry_lock, rt.CheckedLock)


def test_transport_equivalence_with_zero_events():
    from repro.api.service import ExplorationService
    from repro.service.sweep import (
        run_gestures_manager,
        run_gestures_pipeline,
        run_gestures_service,
    )

    logs = {}
    for transport, runner in (
        ("manager", run_gestures_manager),
        ("service", run_gestures_service),
        ("pipeline", run_gestures_pipeline),
    ):
        manager = SessionManager()
        _checked(manager)
        manager.register_dataset(_dataset(), name="d")
        service = ExplorationService(manager, max_sessions=None)
        sid = manager.create_session("d")
        target = manager if transport == "manager" else service
        runner(target, sid, _gestures())
        logs[transport] = manager.decision_log_bytes(sid)
    assert logs["manager"] == logs["service"] == logs["pipeline"]


def test_threaded_dispatch_with_zero_events():
    """N threads × M sessions, overlapping shows: no inversions, no
    unlocked helper entries, decision logs identical to serial."""
    def drive(manager: SessionManager, sids: list[str]) -> None:
        def work(sid: str) -> None:
            for gesture in _gestures():
                manager.execute_gesture(sid, gesture)

        threads = [threading.Thread(target=work, args=(sid,)) for sid in sids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    threaded = SessionManager()
    _checked(threaded)
    threaded.register_dataset(_dataset(), name="d")
    sids = [threaded.create_session("d") for _ in range(4)]
    drive(threaded, sids)

    serial = SessionManager()
    serial.register_dataset(_dataset(), name="d")
    serial_sids = [serial.create_session("d") for _ in range(4)]
    for sid in serial_sids:
        for gesture in _gestures():
            serial.execute_gesture(sid, gesture)

    for sid_t, sid_s in zip(sids, serial_sids):
        assert threaded.decision_log_bytes(sid_t) == serial.decision_log_bytes(sid_s)


def test_durable_evict_recover_with_zero_events(tmp_path):
    from repro.store import make_store

    with make_store("jsonl", tmp_path / "store") as store:
        manager = SessionManager(store=store, idle_timeout=1000.0)
        _checked(manager)
        manager.register_dataset(_dataset(), name="d")
        sid = manager.create_session("d")  # store attached → durable
        for gesture in _gestures()[:2]:
            manager.execute_gesture(sid, gesture)
        before = manager.decision_log_bytes(sid)
        assert manager._evict_session(sid, reason="test")
        manager.recover_session(sid)
        assert manager.decision_log_bytes(sid) == before
