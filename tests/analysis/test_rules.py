"""Fixture-driven self-tests for every reprolint rule.

Each fixture file annotates its seeded violations with a trailing
``# seed: <CODE>`` comment; the harness asserts the linter reports
exactly that ``{(line, code)}`` set — nothing missed, nothing extra.
Path-scoped rules see the fixtures at their mirrored ``repro/<subpath>``
locations, so scoping is exercised for real.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.core import all_rules, module_relative_path, run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

_SEED = re.compile(r"#\s*seed:\s*([A-Z]+\d+)")


def seeded_violations(path: Path) -> set[tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for code in _SEED.findall(line):
            expected.add((lineno, code))
    return expected


def reported_violations(path: Path) -> set[tuple[int, str]]:
    report = run_lint([path], rules=all_rules(), check_pragmas=False)
    return {(v.line, v.code) for v in report.violations}


ALL_FIXTURES = sorted(FIXTURES.rglob("*.py"))


@pytest.mark.parametrize("path", ALL_FIXTURES, ids=lambda p: p.stem)
def test_fixture_findings_match_seeds(path):
    assert reported_violations(path) == seeded_violations(path)


def test_corpus_covers_every_rule_code():
    """Each shipped code must be provably fireable (and each good-file
    pattern provably silent, via the exact-match test above)."""
    seeded = set()
    for path in ALL_FIXTURES:
        seeded |= {code for _, code in seeded_violations(path)}
    shipped = {code for rule in all_rules() for code in rule.codes}
    assert shipped <= seeded, f"codes without a fixture seed: {shipped - seeded}"


def test_good_fixtures_are_clean():
    for path in ALL_FIXTURES:
        if path.stem.startswith("good_"):
            assert reported_violations(path) == set(), path


def test_module_relative_path_mirrors_src_layout():
    assert (
        module_relative_path(FIXTURES / "exploration" / "bad_determinism.py")
        == "exploration/bad_determinism.py"
    )
    assert (
        module_relative_path(Path("src/repro/service/manager.py"))
        == "service/manager.py"
    )
    assert module_relative_path(Path("benchmarks/run_api_bench.py")) == "run_api_bench.py"


def test_scoped_rules_silent_outside_scope(tmp_path):
    """The same banned call outside a decision-relevant path is legal."""
    source = (FIXTURES / "exploration" / "bad_determinism.py").read_text()
    outside = tmp_path / "benchmarks_like.py"
    outside.write_text(source)
    report = run_lint([outside], rules=all_rules(), check_pragmas=False)
    assert report.violations == []


def test_interprocedural_fixed_point_is_conservative(tmp_path):
    """A *_locked call inside a helper whose callers are NOT all guarded
    stays flagged — one unguarded caller breaks the chain."""
    bad = tmp_path / "repro" / "service" / "mixed.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "class M:\n"
        "    def _show_locked(self, s):\n"
        "        return s\n"
        "    def helper(self, s):\n"
        "        return self._show_locked(s)\n"
        "    def guarded(self, s):\n"
        "        with self.lock:\n"
        "            return self.helper(s)\n"
        "    def unguarded(self, s):\n"
        "        return self.helper(s)\n"
    )
    report = run_lint([bad], rules=all_rules(), check_pragmas=False)
    assert {(v.line, v.code) for v in report.violations} == {(5, "LCK001")}


def test_syntax_error_reports_parse_violation(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    report = run_lint([broken])
    assert [v.code for v in report.violations] == ["PARSE001"]
