"""Visualization specs: chains, filtering, sibling detection."""

from repro.exploration.predicate import And, Eq, Not, TRUE
from repro.exploration.visualization import Visualization, chain


class TestConstruction:
    def test_defaults_to_unfiltered(self):
        viz = Visualization("sex")
        assert not viz.is_filtered
        assert viz.predicate is TRUE

    def test_chain_builds_conjunction(self):
        viz = chain("salary", Eq("education", "PhD"), Not(Eq("marital", "Married")))
        assert viz.attribute == "salary"
        assert viz.is_filtered
        norm = viz.predicate.normalize()
        assert isinstance(norm, And)
        assert len(norm.operands) == 2

    def test_chain_without_filters(self):
        assert not chain("sex").is_filtered

    def test_with_filter_extends_chain(self):
        base = Visualization("salary", Eq("education", "PhD"))
        extended = base.with_filter(Eq("sex", "Female"))
        assert extended.predicate.columns() == frozenset({"education", "sex"})
        # Original is unchanged (immutability).
        assert base.predicate.columns() == frozenset({"education"})

    def test_normalized_removes_double_negation(self):
        viz = Visualization("sex", Not(Not(Eq("education", "PhD"))))
        assert viz.normalized().predicate == Eq("education", "PhD")


class TestSiblingDetection:
    def test_negated_sibling(self):
        a = Visualization("sex", Eq("salary", "high"))
        b = Visualization("sex", Not(Eq("salary", "high")))
        assert a.is_negated_sibling(b)
        assert b.is_negated_sibling(a)

    def test_same_attribute_different_filters(self):
        a = Visualization("sex", Eq("salary", "high"))
        b = Visualization("sex", Eq("education", "PhD"))
        assert not a.is_negated_sibling(b)

    def test_different_attribute_never_siblings(self):
        a = Visualization("sex", Eq("salary", "high"))
        b = Visualization("age", Not(Eq("salary", "high")))
        assert not a.is_negated_sibling(b)

    def test_unfiltered_panels_never_siblings(self):
        a = Visualization("sex")
        b = Visualization("sex")
        assert not a.is_negated_sibling(b)

    def test_shows_same_attribute(self):
        assert Visualization("sex").shows_same_attribute(Visualization("sex", Eq("a", 1)))
        assert not Visualization("sex").shows_same_attribute(Visualization("age"))


class TestDescribe:
    def test_unfiltered_is_bare_attribute(self):
        assert Visualization("sex").describe() == "sex"

    def test_filtered_includes_predicate(self):
        text = Visualization("sex", Eq("salary", "high")).describe()
        assert text == "sex | salary = high"


class TestHistogramIntegration:
    def test_histogram_respects_filter(self, tiny_dataset):
        viz = Visualization("color", Eq("flag", True))
        hist = viz.histogram(tiny_dataset)
        assert hist.support == 6

    def test_numeric_histogram_uses_bins(self, tiny_dataset):
        viz = Visualization("size", bins=4)
        hist = viz.histogram(tiny_dataset)
        assert len(hist.labels) == 4
