"""The Sec. 2.3 default-hypothesis heuristics, rules 1-3."""

import pytest

from repro.errors import InsufficientDataError
from repro.exploration.heuristics import (
    HypothesisKind,
    evaluate_proposal,
    propose_hypothesis,
)
from repro.exploration.predicate import And, Eq, Not
from repro.exploration.visualization import Visualization, chain


class TestRule1:
    def test_unfiltered_panel_is_not_a_hypothesis(self):
        assert propose_hypothesis(Visualization("sex")) is None

    def test_trivially_filtered_panel_is_not_a_hypothesis(self):
        viz = Visualization("sex", And(()))
        assert propose_hypothesis(viz) is None


class TestRule2:
    def test_filtered_panel_proposes_distribution_shift(self):
        viz = Visualization("sex", Eq("salary_over_50k", "True"))
        proposal = propose_hypothesis(viz)
        assert proposal is not None
        assert proposal.kind is HypothesisKind.DISTRIBUTION_SHIFT
        assert proposal.reference is None
        assert not proposal.supersedes_reference
        assert "sex" in proposal.null_description

    def test_chain_filters_still_rule2(self):
        viz = chain("salary_over_50k", Eq("education", "PhD"),
                    Not(Eq("marital_status", "Married")))
        proposal = propose_hypothesis(viz)
        assert proposal.kind is HypothesisKind.DISTRIBUTION_SHIFT


class TestRule3:
    def test_negated_sibling_triggers_two_sample(self):
        first = Visualization("sex", Eq("salary_over_50k", "True"))
        second = Visualization("sex", Not(Eq("salary_over_50k", "True")))
        proposal = propose_hypothesis(second, canvas=[first])
        assert proposal.kind is HypothesisKind.TWO_SAMPLE
        assert proposal.reference == first.normalized()
        assert proposal.supersedes_reference

    def test_most_recent_sibling_wins(self):
        a1 = Visualization("sex", Eq("education", "PhD"))
        a2 = Visualization("sex", Eq("salary_over_50k", "True"))
        target = Visualization("sex", Not(Eq("salary_over_50k", "True")))
        proposal = propose_hypothesis(target, canvas=[a1, a2])
        assert proposal.reference == a2.normalized()

    def test_different_attribute_does_not_trigger(self):
        first = Visualization("age", Eq("salary_over_50k", "True"))
        second = Visualization("sex", Not(Eq("salary_over_50k", "True")))
        proposal = propose_hypothesis(second, canvas=[first])
        assert proposal.kind is HypothesisKind.DISTRIBUTION_SHIFT

    def test_non_complementary_filter_does_not_trigger(self):
        first = Visualization("sex", Eq("education", "PhD"))
        second = Visualization("sex", Eq("education", "HS"))
        proposal = propose_hypothesis(second, canvas=[first])
        assert proposal.kind is HypothesisKind.DISTRIBUTION_SHIFT

    def test_unfiltered_pair_does_not_trigger(self):
        first = Visualization("sex")
        second = Visualization("sex")
        assert propose_hypothesis(second, canvas=[first]) is None


class TestEvaluation:
    def test_rule2_detects_planted_dependency(self, census):
        viz = Visualization("sex", Eq("salary_over_50k", "True"))
        proposal = propose_hypothesis(viz)
        result = evaluate_proposal(proposal, census)
        assert result.name == "chi-square-gof"
        assert result.p_value < 1e-6  # sex->salary is planted

    def test_rule2_accepts_independent_attribute(self, census):
        viz = Visualization("race", Eq("salary_over_50k", "True"))
        proposal = propose_hypothesis(viz)
        result = evaluate_proposal(proposal, census)
        assert result.p_value > 0.001  # race is independent by construction

    def test_rule3_two_sample(self, census):
        first = Visualization("sex", Eq("salary_over_50k", "True"))
        second = Visualization("sex", Not(Eq("salary_over_50k", "True")))
        proposal = propose_hypothesis(second, canvas=[first])
        result = evaluate_proposal(proposal, census)
        assert result.name == "chi-square-two-sample"
        assert result.p_value < 1e-6

    def test_numeric_target_uses_bin_edges(self, census):
        edges = census.numeric_bin_edges("age", bins=10)
        viz = Visualization("age", Eq("marital_status", "Married"))
        proposal = propose_hypothesis(viz)
        result = evaluate_proposal(proposal, census, bin_edges=edges)
        assert result.p_value < 1e-6  # age->marital is planted

    def test_empty_filter_raises(self, census):
        viz = Visualization(
            "sex", Eq("education", "PhD") & Not(Eq("education", "PhD"))
        )
        proposal = propose_hypothesis(viz)
        with pytest.raises(InsufficientDataError):
            evaluate_proposal(proposal, census)

    def test_support_is_filtered_population(self, census):
        viz = Visualization("sex", Eq("education", "PhD"))
        proposal = propose_hypothesis(viz)
        result = evaluate_proposal(proposal, census)
        expected = int((census.values("education") == "PhD").sum())
        assert result.n_obs == expected
