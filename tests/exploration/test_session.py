"""The AWARE session: tracking, superseding, revisions, bookmarks, gauge."""

import math

import pytest

from repro.errors import InvalidParameterError, SessionError
from repro.exploration.hypotheses import HypothesisStatus
from repro.exploration.predicate import Eq, Not
from repro.exploration.session import ExplorationSession
from repro.exploration.visualization import Visualization, chain


@pytest.fixture()
def session(census):
    return ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)


class TestShow:
    def test_unfiltered_panel_is_descriptive(self, session):
        result = session.show("sex")
        assert not result.is_hypothesis
        assert result.histogram.support == session.dataset.n_rows

    def test_filtered_panel_tracks_rule2(self, session):
        result = session.show("sex", where=Eq("salary_over_50k", "True"))
        assert result.is_hypothesis
        hyp = result.hypothesis
        assert hyp.kind == "rule2-distribution-shift"
        assert hyp.decision is not None
        assert 0 < hyp.support_fraction <= 1

    def test_descriptive_flag_suppresses_tracking(self, session):
        result = session.show(
            "sex", where=Eq("salary_over_50k", "True"), descriptive=True
        )
        assert not result.is_hypothesis
        assert session.procedure.num_tested == 0

    def test_rule3_supersedes_rule2(self, session):
        session.show("sex", where=Eq("salary_over_50k", "True"))
        result = session.show("sex", where=Not(Eq("salary_over_50k", "True")))
        assert result.hypothesis.kind == "rule3-two-sample"
        history = session.history()
        assert history[0].status is HypothesisStatus.SUPERSEDED
        assert history[0].superseded_by == result.hypothesis.hypothesis_id
        # Only the rule-3 hypothesis remains in the stream.
        assert len(session.active_hypotheses()) == 1

    def test_where_with_visualization_rejected(self, session):
        with pytest.raises(InvalidParameterError):
            session.show(Visualization("sex"), where=Eq("education", "PhD"))

    def test_numeric_attribute_binned_consistently(self, session):
        r1 = session.show("age", where=Eq("education", "PhD"))
        r2 = session.show("age", where=Eq("education", "HS"))
        assert r1.histogram.labels == r2.histogram.labels


class TestEveWalkthrough:
    """The full Sec. 2 example on the synthetic census."""

    def test_steps_a_through_f(self, census):
        session = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
        # A: gender distribution — descriptive.
        a = session.show("sex")
        assert not a.is_hypothesis
        # B: gender | salary>50k — rule-2 hypothesis m1.
        b = session.show("sex", where=Eq("salary_over_50k", "True"))
        assert b.hypothesis.kind == "rule2-distribution-shift"
        # C: gender | not salary>50k next to B — m1' supersedes m1.
        c = session.show("sex", where=Not(Eq("salary_over_50k", "True")))
        assert c.hypothesis.kind == "rule3-two-sample"
        # D: marital | PhD — m2.
        d = session.show("marital_status", where=Eq("education", "PhD"))
        assert d.hypothesis.kind == "rule2-distribution-shift"
        # E: salary | PhD & not married — m3.
        e = session.show(
            chain(
                "salary_over_50k",
                Eq("education", "PhD"),
                Not(Eq("marital_status", "Married")),
            )
        )
        assert e.hypothesis.kind == "rule2-distribution-shift"
        # F: explicit age comparison, overridden to a mean test (m4 -> m4').
        viz_hi = chain(
            "age",
            Eq("education", "PhD"),
            Not(Eq("marital_status", "Married")),
            Eq("salary_over_50k", "True"),
        )
        viz_lo = chain(
            "age",
            Eq("education", "PhD"),
            Not(Eq("marital_status", "Married")),
            Not(Eq("salary_over_50k", "True")),
        )
        f = session.compare(viz_hi, viz_lo)
        report = session.override_with_means(f.hypothesis_id)
        assert report.revised_id == f.hypothesis_id
        final = session.history()[-1]
        assert final.kind == "override"
        assert final.result.name == "welch-t-test"
        # The gauge renders the whole story.
        text = session.gauge().render()
        assert "alpha-wealth" in text and "mean" in text


class TestRevisions:
    def test_delete_removes_from_stream(self, session):
        session.show("sex", where=Eq("salary_over_50k", "True"))
        hyp = session.show("race", where=Eq("workclass", "Private")).hypothesis
        report = session.delete(hyp.hypothesis_id)
        assert report.revised_id == hyp.hypothesis_id
        assert session.history()[-1].status is HypothesisStatus.DELETED
        assert len(session.active_hypotheses()) == 1

    def test_delete_twice_rejected(self, session):
        hyp = session.show("sex", where=Eq("salary_over_50k", "True")).hypothesis
        session.delete(hyp.hypothesis_id)
        with pytest.raises(SessionError):
            session.delete(hyp.hypothesis_id)

    def test_deleting_early_hypothesis_can_change_later_ones(self, census):
        """Deleting a rejected hypothesis removes its omega payout; a later
        hypothesis that lived off that wealth can flip (Sec. 3 semantics)."""
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)
        first = session.show("sex", where=Eq("salary_over_50k", "True")).hypothesis
        assert first.rejected
        # Burn most wealth on nulls, then delete the rejection.
        for _ in range(3):
            session.show("race", where=Eq("workclass", "Private"), descriptive=False)
        report = session.delete(first.hypothesis_id)
        assert isinstance(report.changed, tuple)  # may or may not flip; API holds

    def test_unknown_hypothesis_id(self, session):
        with pytest.raises(SessionError):
            session.delete(999)

    def test_never_overturn_on_append(self, census):
        session = ExplorationSession(census, procedure="delta-hopeful", alpha=0.05)
        decisions = []
        filters = [
            Eq("salary_over_50k", "True"),
            Eq("education", "PhD"),
            Eq("workclass", "Private"),
            Eq("marital_status", "Married"),
            Eq("race", "GroupB"),
        ]
        for pred in filters:
            session.show("sex", where=pred)
            decisions.append([h.rejected for h in session.active_hypotheses()])
        final = decisions[-1]
        for i, snapshot in enumerate(decisions):
            assert snapshot == final[: i + 1]


class TestBookmarks:
    def test_star_and_unstar(self, session):
        hyp = session.show("sex", where=Eq("salary_over_50k", "True")).hypothesis
        session.star(hyp.hypothesis_id)
        assert session.history()[0].starred
        assert len(session.important_discoveries()) == (1 if hyp.rejected else 0)
        session.unstar(hyp.hypothesis_id)
        assert not session.history()[0].starred

    def test_important_discoveries_only_rejected(self, session):
        accepted = session.show("race", where=Eq("workclass", "Private")).hypothesis
        assert not accepted.rejected
        session.star(accepted.hypothesis_id)
        assert session.important_discoveries() == ()


class TestGauge:
    def test_wealth_decreases_on_accepts(self, session):
        start = session.wealth
        session.show("race", where=Eq("workclass", "Private"))
        assert session.wealth < start

    def test_gauge_snapshot_fields(self, session):
        session.show("sex", where=Eq("salary_over_50k", "True"))
        gauge = session.gauge()
        assert gauge.alpha == 0.05
        assert gauge.num_tested == 1
        assert len(gauge.entries) == 1
        entry = gauge.entries[0]
        assert entry.test_name == "chi-square-gof"
        assert entry.effect_magnitude is not None
        assert not math.isnan(entry.data_to_flip)

    def test_exhaustion_surfaces(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05,
                                     gamma=3.0)
        for _ in range(4):
            session.show("race", where=Eq("workclass", "Private"))
            session.show("race", where=Eq("workclass", "Government"))
        assert session.is_exhausted
        assert session.gauge().exhausted
        assert "exhausted" in session.gauge().render()


class TestExplicitTests:
    def test_record_external_test(self, session):
        from repro.stats.tests import z_test_from_statistic

        hyp = session.record_test(
            z_test_from_statistic(3.2, n_obs=500),
            null_description="no effect",
            alternative_description="effect",
        )
        assert hyp.kind == "explicit"
        assert session.procedure.num_tested == 1

    def test_compare_requires_same_attribute(self, session):
        with pytest.raises(SessionError):
            session.compare(Visualization("sex"), Visualization("age"))

    def test_compare_with_means_requires_numeric(self, session):
        a = Visualization("sex", Eq("salary_over_50k", "True"))
        b = Visualization("sex", Not(Eq("salary_over_50k", "True")))
        with pytest.raises(SessionError):
            session.compare(a, b, use_means=True)

    def test_compare_means_directly(self, session):
        a = Visualization("age", Eq("salary_over_50k", "True"))
        b = Visualization("age", Not(Eq("salary_over_50k", "True")))
        hyp = session.compare(a, b, use_means=True)
        assert hyp.result.name == "welch-t-test"

    def test_promote_unfiltered_panel(self, session):
        hyp = session.promote(
            "sex",
            null_description="sex is uniform",
            alternative_description="sex is not uniform",
        )
        assert hyp.kind == "user-promoted"
        assert session.procedure.num_tested == 1


class TestProcedureFactoryContract:
    def test_static_procedure_name_rejected(self, census):
        with pytest.raises(InvalidParameterError):
            ExplorationSession(census, procedure="bhfdr")

    def test_callable_factory(self, census):
        from repro.procedures.alpha_investing import AlphaInvesting, GammaFixed

        session = ExplorationSession(
            census, procedure=lambda: AlphaInvesting(GammaFixed(20.0))
        )
        session.show("sex", where=Eq("salary_over_50k", "True"))
        assert session.procedure.num_tested == 1

    def test_bad_procedure_type(self, census):
        with pytest.raises(InvalidParameterError):
            ExplorationSession(census, procedure=123)
