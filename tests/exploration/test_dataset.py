"""Columnar dataset: typing, masks, sampling, permutation."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SchemaError
from repro.exploration.dataset import ColumnType, Dataset


class TestConstruction:
    def test_auto_detects_categorical_strings_and_bools(self, tiny_dataset):
        auto = Dataset({"s": ["a", "b"], "b": [True, False], "n": [1.0, 2.0]})
        assert auto.is_categorical("s")
        assert auto.is_categorical("b")
        assert not auto.is_categorical("n")

    def test_explicit_categorical_list(self):
        ds = Dataset({"code": [1, 2, 1]}, categorical=["code"])
        assert ds.is_categorical("code")
        assert ds.categories("code") == (1, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Dataset({"a": [1, 2], "b": [1, 2, 3]})

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            Dataset({})

    def test_non_numeric_values_need_categorical(self):
        with pytest.raises(SchemaError):
            Dataset({"x": ["a", "b"]}, categorical=[])

    def test_category_universe_enforced(self):
        with pytest.raises(SchemaError):
            Dataset(
                {"c": ["a", "z"]},
                categorical=["c"],
                category_universe={"c": ("a", "b")},
            )


class TestAccess:
    def test_basic_introspection(self, tiny_dataset):
        assert tiny_dataset.n_rows == 12
        assert len(tiny_dataset) == 12
        assert tiny_dataset.column_names == ("color", "size", "flag")

    def test_categories_sorted(self, tiny_dataset):
        assert tiny_dataset.categories("color") == ("blue", "green", "red")

    def test_categories_of_numeric_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.categories("size")

    def test_missing_column(self, tiny_dataset):
        with pytest.raises(SchemaError, match="available"):
            tiny_dataset.column("nope")

    def test_values_with_mask(self, tiny_dataset):
        mask = np.zeros(12, dtype=bool)
        mask[:3] = True
        np.testing.assert_array_equal(
            tiny_dataset.values("size", mask), [1.0, 2.0, 3.0]
        )

    def test_values_mask_length_checked(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            tiny_dataset.values("size", np.ones(3, dtype=bool))

    def test_column_type_enum(self, tiny_dataset):
        assert tiny_dataset.column("color").ctype is ColumnType.CATEGORICAL
        assert tiny_dataset.column("size").ctype is ColumnType.NUMERIC


class TestSelect:
    def test_select_preserves_category_universe(self, tiny_dataset):
        mask = np.array([c == "green" for c in tiny_dataset.values("color")])
        sub = tiny_dataset.select(mask)
        assert sub.n_rows == 2
        # Universe kept even though only green rows remain.
        assert sub.categories("color") == ("blue", "green", "red")

    def test_select_all_false(self, tiny_dataset):
        sub = tiny_dataset.select(np.zeros(12, dtype=bool))
        assert sub.n_rows == 0


class TestSampling:
    def test_sample_fraction_size(self, census):
        sub = census.sample_fraction(0.25, seed=1)
        assert sub.n_rows == pytest.approx(census.n_rows * 0.25, abs=1)

    def test_sample_fraction_one_is_identity(self, census):
        assert census.sample_fraction(1.0) is census

    def test_sample_reproducible(self, census):
        a = census.sample_fraction(0.1, seed=5)
        b = census.sample_fraction(0.1, seed=5)
        np.testing.assert_array_equal(a.values("age"), b.values("age"))

    def test_sample_fraction_validation(self, census):
        with pytest.raises(InvalidParameterError):
            census.sample_fraction(0.0)
        with pytest.raises(InvalidParameterError):
            census.sample_fraction(1.1)


class TestPermutation:
    def test_preserves_marginals(self, census):
        permuted = census.permute_columns(seed=2)
        for name in ("sex", "education"):
            original = sorted(census.values(name).tolist())
            shuffled = sorted(permuted.values(name).tolist())
            assert original == shuffled

    def test_destroys_dependencies(self, census):
        """education->salary is planted; permutation must break it."""
        from repro.stats.tests import chi_square_independence

        def table(ds):
            rows = []
            for edu in ds.categories("education"):
                edu_mask = ds.values("education") == edu
                sal = ds.values("salary_over_50k", edu_mask)
                rows.append([(sal == "True").sum(), (sal == "False").sum()])
            return rows

        original_p = chi_square_independence(table(census)).p_value
        permuted_p = chi_square_independence(table(census.permute_columns(seed=3))).p_value
        assert original_p < 1e-10
        assert permuted_p > 0.001


class TestBinEdges:
    def test_equal_width(self, tiny_dataset):
        edges = tiny_dataset.numeric_bin_edges("size", bins=11)
        np.testing.assert_allclose(edges, np.linspace(1, 12, 12))

    def test_constant_column_widened(self):
        ds = Dataset({"x": [5.0, 5.0, 5.0]})
        edges = ds.numeric_bin_edges("x", bins=2)
        assert edges[0] < edges[-1]

    def test_categorical_rejected(self, tiny_dataset):
        with pytest.raises(SchemaError):
            tiny_dataset.numeric_bin_edges("color")

    def test_bins_validation(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            tiny_dataset.numeric_bin_edges("size", bins=1)
