"""Histograms: alignment, conservation, binning contracts."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.exploration.histogram import (
    categorical_histogram,
    histogram_for,
    numeric_histogram,
)
from repro.exploration.predicate import Eq, Not


class TestCategoricalHistogram:
    def test_counts_whole_dataset(self, tiny_dataset):
        hist = categorical_histogram(tiny_dataset, "color")
        assert hist.as_dict() == {"blue": 5, "green": 2, "red": 5}
        assert hist.support == 12

    def test_filtered_keeps_category_universe(self, tiny_dataset):
        hist = categorical_histogram(tiny_dataset, "color", Eq("flag", True))
        assert set(hist.labels) == {"blue", "green", "red"}
        assert hist.support == 6

    def test_counts_conserved_under_complementary_filters(self, tiny_dataset):
        full = categorical_histogram(tiny_dataset, "color")
        yes = categorical_histogram(tiny_dataset, "color", Eq("flag", True))
        no = categorical_histogram(tiny_dataset, "color", Not(Eq("flag", True)))
        for label in full.labels:
            assert yes.as_dict()[label] + no.as_dict()[label] == full.as_dict()[label]

    def test_numeric_attribute_rejected(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            categorical_histogram(tiny_dataset, "size")

    def test_proportions_sum_to_one(self, tiny_dataset):
        hist = categorical_histogram(tiny_dataset, "color")
        assert hist.proportions().sum() == pytest.approx(1.0)

    def test_empty_histogram_proportions_raise(self, tiny_dataset):
        hist = categorical_histogram(
            tiny_dataset, "color", Eq("flag", True) & Eq("flag", False)
        )
        assert hist.support == 0
        with pytest.raises(InsufficientDataError):
            hist.proportions()


class TestNumericHistogram:
    def test_fixed_edges_alignment(self, tiny_dataset):
        edges = tiny_dataset.numeric_bin_edges("size", bins=4)
        full = numeric_histogram(tiny_dataset, "size", edges)
        filtered = numeric_histogram(tiny_dataset, "size", edges, Eq("flag", True))
        assert full.labels == filtered.labels
        assert full.support == 12
        assert filtered.support == 6

    def test_counts_cover_all_rows(self, tiny_dataset):
        edges = tiny_dataset.numeric_bin_edges("size", bins=5)
        hist = numeric_histogram(tiny_dataset, "size", edges)
        assert sum(hist.counts) == 12

    def test_categorical_attribute_rejected(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            numeric_histogram(tiny_dataset, "color", np.array([0.0, 1.0, 2.0]))

    def test_too_few_edges_rejected(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            numeric_histogram(tiny_dataset, "size", np.array([0.0, 1.0]))


class TestDispatch:
    def test_histogram_for_dispatches(self, tiny_dataset):
        cat = histogram_for(tiny_dataset, "color")
        num = histogram_for(tiny_dataset, "size", bins=3)
        assert cat.labels == ("blue", "green", "red")
        assert len(num.labels) == 3

    def test_render_contains_counts(self, tiny_dataset):
        text = histogram_for(tiny_dataset, "color").render()
        assert "red" in text and "5" in text

    def test_mismatched_labels_counts_rejected(self):
        from repro.exploration.histogram import Histogram

        with pytest.raises(InvalidParameterError):
            Histogram(attribute="x", labels=("a",), counts=(1, 2))
