"""Session export: dict/JSON snapshots, round trip, Markdown report."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.exploration.export import (
    load_session_records,
    save_session,
    session_report_markdown,
    session_to_dict,
    session_to_json,
)
from repro.exploration.predicate import Eq, Not
from repro.exploration.session import ExplorationSession


@pytest.fixture()
def session(census):
    s = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
    s.show("sex", where=Eq("salary_over_50k", "True"))
    s.show("sex", where=Not(Eq("salary_over_50k", "True")))  # supersedes
    s.show("race", where=Eq("workclass", "Private"))
    s.star(2)
    return s


class TestSessionToDict:
    def test_top_level_fields(self, session):
        payload = session_to_dict(session)
        assert payload["procedure"] == "epsilon-hybrid"
        assert payload["alpha"] == 0.05
        assert payload["num_tested"] == 2  # superseded one replaced
        assert payload["dataset"] == session.dataset.name
        assert isinstance(payload["wealth"], float)

    def test_hypothesis_records_complete(self, session):
        payload = session_to_dict(session)
        assert len(payload["hypotheses"]) == 3  # incl. superseded
        by_id = {h["id"]: h for h in payload["hypotheses"]}
        assert by_id[1]["status"] == "superseded"
        assert by_id[1]["superseded_by"] == 2
        assert by_id[2]["starred"] is True
        for record in payload["hypotheses"]:
            assert set(record) >= {
                "id", "kind", "null", "alternative", "test", "p_value",
                "level", "rejected", "status", "effect_size", "data_to_flip",
            }

    def test_json_serializable(self, session):
        text = session_to_json(session)
        parsed = json.loads(text)
        assert parsed["schema_version"] == 1

    def test_nan_inf_sanitized(self, census):
        s = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05, gamma=1.0)
        # Exhaust immediately, producing level-0 decisions with nan flips.
        s.show("race", where=Eq("workclass", "Private"))
        s.show("race", where=Eq("workclass", "Government"))
        s.show("race", where=Eq("workclass", "SelfEmployed"))
        json.loads(session_to_json(s))  # must not raise


class TestRoundTrip:
    def test_save_and_load(self, session, tmp_path):
        path = save_session(session, tmp_path / "session.json")
        records = load_session_records(path)
        assert records["num_tested"] == 2
        assert len(records["hypotheses"]) == 3

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_session_records(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 1}), encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_session_records(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_session_records(path)


class TestMarkdownReport:
    def test_sections_present(self, session):
        report = session_report_markdown(session)
        assert "# AWARE session report" in report
        assert "## Important discoveries" in report
        assert "## Full hypothesis trail" in report
        assert "epsilon-hybrid" in report

    def test_starred_discovery_listed(self, session):
        report = session_report_markdown(session)
        starred = session.history()[1]  # id 2
        assert starred.alternative_description in report

    def test_empty_session_report(self, census):
        s = ExplorationSession(census, procedure="gamma-fixed")
        report = session_report_markdown(s)
        assert "*(none)*" in report

    def test_exhaustion_banner(self, census):
        s = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05, gamma=1.0)
        s.show("race", where=Eq("workclass", "Private"))
        s.show("race", where=Eq("workclass", "Government"))
        assert "exhausted" in session_report_markdown(s)
