"""The cached, dictionary-encoded engine is observationally identical to a
naive per-row reference evaluator.

Random datasets × random predicate trees must produce exactly equal masks,
histograms and chi-square p-values whether evaluated through the columnar
engine (codes, memoized masks, bincount) or through a pure-Python row-by-row
reference that never touches codes or caches.  Plus: cache-invalidation
semantics — views, views of views, and permuted datasets each carry a fresh
generation token and their own caches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.exploration.dataset import Dataset
from repro.exploration.histogram import categorical_histogram, numeric_histogram
from repro.exploration.predicate import TRUE, And, Eq, In, Not, Or, Range
from repro.stats.tests import chi_square_gof

COLORS = ("red", "blue", "green", "yellow")


@st.composite
def raw_tables(draw):
    """Raw column lists; the dataset is built inside each test."""
    n = draw(st.integers(min_value=1, max_value=50))
    colors = draw(st.lists(st.sampled_from(COLORS), min_size=n, max_size=n))
    values = draw(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return {"color": colors, "value": values}


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Eq("color", draw(st.sampled_from(COLORS)))
        if choice == 1:
            subset = draw(
                st.lists(st.sampled_from(COLORS), min_size=1, max_size=3, unique=True)
            )
            return In("color", subset)
        lo = draw(st.floats(min_value=-50, max_value=49, allow_nan=False))
        hi = draw(st.floats(min_value=lo + 0.001, max_value=51, allow_nan=False))
        return Range("value", lo, hi)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(predicates(depth=0))
    if kind == 1:
        return Not(draw(predicates(depth=depth - 1)))
    ops = draw(st.lists(predicates(depth=depth - 1), min_size=1, max_size=3))
    return And(tuple(ops)) if kind == 2 else Or(tuple(ops))


def make_dataset(table):
    return Dataset(
        table,
        categorical=["color"],
        category_universe={"color": COLORS},
    )


def naive_matches(pred, row) -> bool:
    """Reference semantics: per-row Python evaluation, no codes, no caches."""
    if pred.is_trivial():
        return True
    if isinstance(pred, Eq):
        return row[pred.column] == pred.value
    if isinstance(pred, In):
        return row[pred.column] in pred.values
    if isinstance(pred, Range):
        return pred.lo <= row[pred.column] < pred.hi
    if isinstance(pred, Not):
        return not naive_matches(pred.operand, row)
    if isinstance(pred, And):
        return all(naive_matches(op, row) for op in pred.operands)
    if isinstance(pred, Or):
        return any(naive_matches(op, row) for op in pred.operands)
    raise AssertionError(f"unhandled predicate {pred!r}")


def naive_mask(pred, table) -> np.ndarray:
    rows = [
        {"color": c, "value": v} for c, v in zip(table["color"], table["value"])
    ]
    return np.array([naive_matches(pred, row) for row in rows], dtype=bool)


class TestMaskEquivalence:
    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=150, deadline=None)
    def test_engine_mask_equals_naive(self, table, p):
        ds = make_dataset(table)
        np.testing.assert_array_equal(p.mask(ds), naive_mask(p, table))

    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_mask_on_view_equals_naive_on_selected_rows(self, table, p):
        ds = make_dataset(table)
        keep = naive_mask(Range("value", -50, 0.001), table)
        view = ds.select(keep)
        sub_table = {
            "color": [c for c, k in zip(table["color"], keep) if k],
            "value": [v for v, k in zip(table["value"], keep) if k],
        }
        np.testing.assert_array_equal(p.mask(view), naive_mask(p, sub_table))

    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_cached_second_evaluation_identical(self, table, p):
        ds = make_dataset(table)
        first = p.mask(ds)
        second = p.mask(ds)
        np.testing.assert_array_equal(first, second)
        assert second is first  # memoized, not recomputed
        assert not second.flags.writeable  # shared masks are read-only


class TestHistogramEquivalence:
    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=150, deadline=None)
    def test_categorical_histogram_equals_naive_counts(self, table, p):
        ds = make_dataset(table)
        hist = categorical_histogram(ds, "color", p)
        mask = naive_mask(p, table)
        expected = {c: 0 for c in COLORS}
        for color, keep in zip(table["color"], mask):
            if keep:
                expected[color] += 1
        assert hist.labels == COLORS
        assert hist.as_dict() == expected

    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_numeric_histogram_equals_naive(self, table, p):
        ds = make_dataset(table)
        edges = np.linspace(-50.0, 51.0, 11)
        hist = numeric_histogram(ds, "value", edges, p)
        mask = naive_mask(p, table)
        selected = [v for v, keep in zip(table["value"], mask) if keep]
        expected, _ = np.histogram(np.asarray(selected, dtype=float), bins=edges)
        assert hist.counts == tuple(int(c) for c in expected)

    @given(table=raw_tables(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_rule2_p_value_equals_naive_path(self, table, p):
        """The engine's counts feed chi-square identically to naive counts."""
        ds = make_dataset(table)
        filtered = categorical_histogram(ds, "color", p)
        overall = categorical_histogram(ds, "color", TRUE)
        mask = naive_mask(p, table)
        naive_counts = {c: 0 for c in COLORS}
        for color, keep in zip(table["color"], mask):
            if keep:
                naive_counts[color] += 1
        naive_overall = {c: 0 for c in COLORS}
        for color in table["color"]:
            naive_overall[color] += 1
        total = sum(naive_overall.values())
        naive_probs = [naive_overall[c] / total for c in COLORS]
        try:
            expected = chi_square_gof(
                [naive_counts[c] for c in COLORS], naive_probs
            )
        except InsufficientDataError:
            with pytest.raises(InsufficientDataError):
                chi_square_gof(filtered.counts, overall.proportions())
            return
        result = chi_square_gof(filtered.counts, overall.proportions())
        assert result.p_value == expected.p_value
        assert result.statistic == expected.statistic


class TestViewSemantics:
    def test_select_is_zero_copy(self, tiny_dataset):
        mask = np.zeros(12, dtype=bool)
        mask[2:7] = True
        view = tiny_dataset.select(mask)
        assert view.is_view
        assert not tiny_dataset.is_view
        # Shares the parent's physical stores, no column copied eagerly.
        assert view._stores is tiny_dataset._stores

    def test_view_of_view_composes_indices(self, tiny_dataset):
        first = np.zeros(12, dtype=bool)
        first[2:10] = True
        view = tiny_dataset.select(first)
        second = np.zeros(view.n_rows, dtype=bool)
        second[::2] = True
        nested = view.select(second)
        np.testing.assert_array_equal(
            nested.values("size"), tiny_dataset.values("size")[2:10][::2]
        )
        np.testing.assert_array_equal(
            nested.values("color"), tiny_dataset.values("color")[2:10][::2]
        )

    def test_select_index_preserves_given_order(self, tiny_dataset):
        idx = np.array([5, 1, 7])
        view = tiny_dataset.select_index(idx)
        np.testing.assert_array_equal(
            view.values("size"), tiny_dataset.values("size")[idx]
        )

    def test_sample_fraction_preserves_row_order(self, census):
        sample = census.sample_fraction(0.3, seed=7)
        assert sample.is_view
        assert np.all(np.diff(sample._row_index) > 0)  # strictly increasing

    def test_sample_fraction_matches_historical_mask_path(self, census):
        """Index path selects exactly the rows the mask path used to."""
        from repro.rng import as_generator

        sample = census.sample_fraction(0.25, seed=11)
        rng = as_generator(11)
        k = max(1, int(round(census.n_rows * 0.25)))
        idx = rng.choice(census.n_rows, size=k, replace=False)
        mask = np.zeros(census.n_rows, dtype=bool)
        mask[idx] = True
        np.testing.assert_array_equal(
            sample.values("age"), census.values("age")[mask]
        )
        np.testing.assert_array_equal(
            sample.values("education"), census.values("education")[mask]
        )

    def test_materialize_detaches_view(self, tiny_dataset):
        view = tiny_dataset.select(np.arange(12) % 2 == 0)
        solid = view.materialize()
        assert not solid.is_view
        np.testing.assert_array_equal(solid.values("size"), view.values("size"))
        assert solid.categories("color") == view.categories("color")


class TestCacheInvalidation:
    def test_views_and_permutations_get_fresh_generations(self, tiny_dataset):
        mask = np.ones(12, dtype=bool)
        view = tiny_dataset.select(mask)
        nested = view.select(np.ones(view.n_rows, dtype=bool))
        permuted = tiny_dataset.permute_columns(seed=0)
        tokens = {
            tiny_dataset.generation,
            view.generation,
            nested.generation,
            permuted.generation,
        }
        assert len(tokens) == 4  # all distinct: no stale cache can ever hit

    def test_view_masks_do_not_leak_from_parent(self, tiny_dataset):
        p = Eq("color", "red")
        parent_mask = p.mask(tiny_dataset)
        view = tiny_dataset.select(np.arange(12) < 6)
        view_mask = p.mask(view)
        assert view_mask.shape == (6,)
        np.testing.assert_array_equal(view_mask, parent_mask[:6])
        assert view_mask is not parent_mask

    def test_permuted_dataset_recomputes_masks(self, tiny_dataset):
        p = Eq("color", "red")
        before = p.mask(tiny_dataset)
        permuted = tiny_dataset.permute_columns(seed=3)
        after = p.mask(permuted)
        assert int(before.sum()) == int(after.sum())  # marginals preserved
        assert after is not before

    def test_histograms_are_memoized_per_dataset(self, tiny_dataset):
        p = Eq("color", "blue")
        first = categorical_histogram(tiny_dataset, "color", p)
        second = categorical_histogram(tiny_dataset, "color", p)
        assert second is first
        view = tiny_dataset.select(np.arange(12) < 4)
        third = categorical_histogram(view, "color", p)
        assert third is not first

    def test_codes_are_immutable_engine_inputs(self, tiny_dataset):
        codes = tiny_dataset.column("color").codes
        assert codes.dtype == np.int32
        recoded = tiny_dataset.column("color").codes
        assert recoded is codes  # materialized once, shared thereafter
