"""TrackedHypothesis records and the RiskGauge snapshot."""

import math

import pytest

from repro.exploration.gauge import GaugeEntry, RiskGauge
from repro.exploration.hypotheses import HypothesisStatus, TrackedHypothesis
from repro.procedures.base import Decision
from repro.stats.effect_size import EffectMagnitude
from repro.stats.tests import chi_square_gof, z_test_from_statistic


def make_hypothesis(p_value=0.001, level=0.01, rejected=True, statistic=3.3):
    result = z_test_from_statistic(statistic)
    decision = Decision(
        index=0, p_value=result.p_value, level=level, rejected=rejected,
        wealth_before=0.05, wealth_after=0.09 if rejected else 0.04,
    )
    return TrackedHypothesis(
        hypothesis_id=1,
        kind="rule2-distribution-shift",
        null_description="A = B",
        alternative_description="A <> B",
        result=result,
        decision=decision,
        support_fraction=0.5,
    )


class TestTrackedHypothesis:
    def test_accessors(self):
        hyp = make_hypothesis()
        assert hyp.rejected
        assert hyp.p_value == hyp.result.p_value
        assert hyp.status is HypothesisStatus.ACTIVE

    def test_data_to_flip_rejected_direction(self):
        hyp = make_hypothesis(rejected=True, statistic=5.0, level=0.05)
        flip = hyp.data_to_flip()
        assert flip > 0  # needs added null data to undo

    def test_data_to_flip_accepted_direction(self):
        hyp = make_hypothesis(rejected=False, statistic=1.0, level=0.05)
        assert hyp.data_to_flip() > 0  # needs more data to become significant

    def test_data_to_flip_nan_at_zero_level(self):
        result = z_test_from_statistic(1.0)
        decision = Decision(index=0, p_value=result.p_value, level=0.0,
                            rejected=False, exhausted=True)
        hyp = TrackedHypothesis(
            hypothesis_id=2, kind="explicit", null_description="n",
            alternative_description="a", result=result, decision=decision,
            support_fraction=1.0,
        )
        assert math.isnan(hyp.data_to_flip())

    def test_effect_magnitude_chi_square_uses_w_bands(self):
        result = chi_square_gof([70, 30], [0.5, 0.5])  # w = 0.4 -> medium
        decision = Decision(index=0, p_value=result.p_value, level=0.05,
                            rejected=True)
        hyp = TrackedHypothesis(
            hypothesis_id=3, kind="explicit", null_description="n",
            alternative_description="a", result=result, decision=decision,
            support_fraction=1.0,
        )
        assert hyp.effect_magnitude is EffectMagnitude.MEDIUM

    def test_with_helpers_are_copies(self):
        hyp = make_hypothesis()
        superseded = hyp.with_status(HypothesisStatus.SUPERSEDED, superseded_by=9)
        starred = hyp.with_star(True)
        assert hyp.status is HypothesisStatus.ACTIVE
        assert superseded.superseded_by == 9
        assert starred.starred and not hyp.starred

    def test_describe_mentions_verdict(self):
        assert "REJECTED" in make_hypothesis(rejected=True).describe()
        assert "accepted" in make_hypothesis(rejected=False, statistic=0.5).describe()


class TestGaugeEntry:
    def test_from_hypothesis(self):
        entry = GaugeEntry.from_hypothesis(make_hypothesis())
        assert entry.hypothesis_id == 1
        assert entry.rejected
        assert entry.test_name == "z-test"
        assert entry.status == "active"

    def test_squares_rendering(self):
        entry = GaugeEntry.from_hypothesis(make_hypothesis(statistic=3.0))
        squares = entry.squares()
        assert "▪" in squares

    def test_squares_overflow_marker(self):
        entry = GaugeEntry.from_hypothesis(make_hypothesis(statistic=30.0))
        assert entry.squares().endswith("+")

    def test_render_contains_labels(self):
        text = GaugeEntry.from_hypothesis(make_hypothesis()).render()
        assert "A <> B" in text and "green" in text


class TestRiskGauge:
    def make_gauge(self, wealth=0.02):
        return RiskGauge(
            alpha=0.05, wealth=wealth, initial_wealth=0.0475,
            procedure_name="epsilon-hybrid", num_tested=3, num_discoveries=1,
            exhausted=wealth == 0.0,
            entries=(GaugeEntry.from_hypothesis(make_hypothesis()),),
        )

    def test_wealth_fraction(self):
        assert self.make_gauge(0.0475).wealth_fraction == pytest.approx(1.0)
        assert self.make_gauge(0.0).wealth_fraction == 0.0
        # Wealth can exceed W(0) after rejections; the dial clamps at 1.
        assert self.make_gauge(0.2).wealth_fraction == 1.0

    def test_render_panel(self):
        text = self.make_gauge().render()
        assert "epsilon-hybrid" in text
        assert "alpha-wealth" in text
        assert "discoveries: 1" in text

    def test_exhausted_banner(self):
        assert "exhausted" in self.make_gauge(0.0).render()
        assert "exhausted" not in self.make_gauge(0.02).render()
