"""Predicate algebra: masks, normalization, complement detection."""

import numpy as np
import pytest

from repro.errors import PredicateError
from repro.exploration.predicate import TRUE, And, Eq, In, Not, Or, Range


class TestMasks:
    def test_true_matches_all(self, tiny_dataset):
        assert TRUE.mask(tiny_dataset).all()

    def test_eq(self, tiny_dataset):
        mask = Eq("color", "red").mask(tiny_dataset)
        assert mask.sum() == 5

    def test_eq_unknown_category_rejected(self, tiny_dataset):
        with pytest.raises(PredicateError):
            Eq("color", "purple").mask(tiny_dataset)

    def test_in(self, tiny_dataset):
        mask = In("color", ["red", "green"]).mask(tiny_dataset)
        assert mask.sum() == 7

    def test_in_unknown_category_rejected(self, tiny_dataset):
        with pytest.raises(PredicateError):
            In("color", ["red", "purple"]).mask(tiny_dataset)

    def test_range_half_open(self, tiny_dataset):
        mask = Range("size", 2.0, 5.0).mask(tiny_dataset)
        np.testing.assert_array_equal(
            tiny_dataset.values("size", mask), [2.0, 3.0, 4.0]
        )

    def test_range_on_categorical_rejected(self, tiny_dataset):
        with pytest.raises(PredicateError):
            Range("color", 0, 1).mask(tiny_dataset)

    def test_empty_range_rejected(self):
        with pytest.raises(PredicateError):
            Range("size", 5.0, 5.0)

    def test_not(self, tiny_dataset):
        mask = Not(Eq("color", "red")).mask(tiny_dataset)
        assert mask.sum() == 7

    def test_and(self, tiny_dataset):
        # red rows are 0,1,6,9,11; flag=True rows are the even indices;
        # the intersection is rows 0 and 6.
        pred = And((Eq("color", "red"), Eq("flag", True)))
        assert pred.mask(tiny_dataset).sum() == 2

    def test_or(self, tiny_dataset):
        pred = Or((Eq("color", "green"), Eq("flag", True)))
        assert pred.mask(tiny_dataset).sum() == 7

    def test_operator_sugar(self, tiny_dataset):
        a = Eq("color", "red") & Eq("flag", True)
        b = And((Eq("color", "red"), Eq("flag", True)))
        np.testing.assert_array_equal(a.mask(tiny_dataset), b.mask(tiny_dataset))
        inverted = ~Eq("color", "red")
        np.testing.assert_array_equal(
            inverted.mask(tiny_dataset), ~Eq("color", "red").mask(tiny_dataset)
        )


class TestNormalization:
    def test_double_negation_cancels(self):
        p = Eq("x", 1)
        assert Not(Not(p)).normalize() == p

    def test_nested_and_flattens(self):
        p = And((And((Eq("a", 1), Eq("b", 2))), Eq("c", 3))).normalize()
        assert isinstance(p, And)
        assert len(p.operands) == 3

    def test_and_with_true_drops_it(self):
        p = And((TRUE, Eq("a", 1))).normalize()
        assert p == Eq("a", 1)

    def test_empty_and_is_true(self):
        assert And(()).normalize().is_trivial()

    def test_or_with_true_is_true(self):
        assert Or((TRUE, Eq("a", 1))).normalize().is_trivial()

    def test_and_order_insensitive_equality(self):
        a = And((Eq("a", 1), Eq("b", 2))).normalize()
        b = And((Eq("b", 2), Eq("a", 1))).normalize()
        assert a == b

    def test_duplicate_operands_deduplicated(self):
        p = And((Eq("a", 1), Eq("a", 1))).normalize()
        assert p == Eq("a", 1)


class TestComplementDetection:
    def test_not_is_complement(self):
        p = Eq("salary", "high")
        assert Not(p).is_complement_of(p)
        assert p.is_complement_of(Not(p))

    def test_double_negation_complement(self):
        p = Eq("salary", "high")
        assert Not(Not(Not(p))).is_complement_of(p)

    def test_unrelated_not_complement(self):
        assert not Eq("a", 1).is_complement_of(Eq("a", 2))
        assert not Eq("a", 1).is_complement_of(Eq("b", 1))

    def test_compound_complement(self):
        chain = And((Eq("edu", "PhD"), Not(Eq("marital", "Married")))).normalize()
        assert Not(chain).normalize().is_complement_of(chain)

    def test_self_is_not_complement(self):
        p = Eq("a", 1)
        assert not p.is_complement_of(p)


class TestDescribe:
    def test_renders_readable(self):
        assert Eq("salary", "high").describe() == "salary = high"
        assert Not(Eq("salary", "high")).describe() == "not (salary = high)"
        assert "in" in In("color", ["a", "b"]).describe()
        assert "<=" in Range("age", 10, 20).describe()

    def test_columns_collected(self):
        pred = And((Eq("a", 1), Or((Eq("b", 2), Range("c", 0, 1)))))
        assert pred.columns() == frozenset({"a", "b", "c"})

    def test_true_has_no_columns(self):
        assert TRUE.columns() == frozenset()


class TestHashability:
    def test_predicates_usable_in_sets(self):
        s = {Eq("a", 1), Eq("a", 1), Eq("b", 2)}
        assert len(s) == 2

    def test_normalized_and_hash_equal(self):
        a = And((Eq("a", 1), Eq("b", 2))).normalize()
        b = And((Eq("b", 2), Eq("a", 1))).normalize()
        assert hash(a) == hash(b)
