"""Power arithmetic: the paper's Sec. 4.1 numbers and n_H1 extrapolation."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.stats.power import (
    extra_data_to_accept,
    extra_data_to_reject,
    holdout_combined_power,
    power_chi_square_gof,
    power_t_test_two_sample,
    power_z_test_one_sample,
    power_z_test_two_sample,
    required_n_chi_square_gof,
    required_n_z_test_two_sample,
)
from repro.stats.tests import chi_square_gof, z_test_from_statistic


class TestPaperHoldoutNumbers:
    """Sec. 4.1: d = 0.25 (means 0 vs 1, sigma 4), 500/group, one-sided."""

    def test_full_data_power_is_099(self):
        assert power_t_test_two_sample(0.25, 500, alternative="greater") == pytest.approx(
            0.99, abs=0.005
        )

    def test_half_data_power_is_087(self):
        assert power_t_test_two_sample(0.25, 250, alternative="greater") == pytest.approx(
            0.87, abs=0.01
        )

    def test_holdout_power_is_076(self):
        result = holdout_combined_power(0.25, 500)
        assert result["holdout"] == pytest.approx(0.76, abs=0.01)
        assert result["holdout"] == pytest.approx(result["half"] ** 2)

    def test_holdout_loses_power_vs_full(self):
        result = holdout_combined_power(0.25, 500)
        assert result["full"] - result["holdout"] > 0.2


class TestPowerFunctions:
    def test_zero_effect_power_equals_alpha(self):
        assert power_z_test_two_sample(0.0, 100, alpha=0.05) == pytest.approx(0.05)
        assert power_chi_square_gof(0.0, 100, df=3, alpha=0.05) == pytest.approx(0.05)

    def test_power_monotone_in_n(self):
        powers = [power_z_test_two_sample(0.3, n) for n in (20, 50, 100, 400)]
        assert powers == sorted(powers)

    def test_power_monotone_in_effect(self):
        powers = [power_z_test_two_sample(d, 50) for d in (0.1, 0.3, 0.6, 1.0)]
        assert powers == sorted(powers)

    def test_one_sided_beats_two_sided(self):
        two = power_z_test_one_sample(0.4, 50, alternative="two-sided")
        one = power_z_test_one_sample(0.4, 50, alternative="greater")
        assert one > two

    def test_t_power_close_to_z_power_large_n(self):
        z = power_z_test_two_sample(0.25, 500, alternative="greater")
        t = power_t_test_two_sample(0.25, 500, alternative="greater")
        assert t == pytest.approx(z, abs=0.003)

    def test_less_alternative_detects_negative_shift(self):
        assert power_z_test_one_sample(-0.5, 50, alternative="less") > 0.8

    def test_rejects_bad_alpha(self):
        with pytest.raises(InvalidParameterError):
            power_z_test_two_sample(0.3, 50, alpha=1.5)


class TestSampleSizeSolvers:
    def test_z_solver_round_trip(self):
        n = required_n_z_test_two_sample(0.3, power=0.8)
        assert power_z_test_two_sample(0.3, n) >= 0.8
        assert power_z_test_two_sample(0.3, n - 2) < 0.8

    def test_textbook_value(self):
        # d=0.5, power .8, two-sided alpha .05 -> ~63-64 per group.
        n = required_n_z_test_two_sample(0.5, power=0.8)
        assert 62 <= n <= 64

    def test_chi_square_solver_round_trip(self):
        n = required_n_chi_square_gof(0.3, df=3, power=0.8)
        assert power_chi_square_gof(0.3, n, df=3) >= 0.8
        assert power_chi_square_gof(0.3, n - 1, df=3) < 0.8

    def test_zero_effect_rejected(self):
        with pytest.raises(InvalidParameterError):
            required_n_z_test_two_sample(0.0)
        with pytest.raises(InvalidParameterError):
            required_n_chi_square_gof(0.0, df=2)


class TestDataToFlip:
    """The n_H1 gauge annotations (Sec. 3, Fig. 2 B/C)."""

    def test_accepted_z_needs_more_data(self):
        r = z_test_from_statistic(1.0, n_obs=100)  # p ~ .32, not significant
        k = extra_data_to_reject(r, 0.05)
        # total factor (1+k) = (1.96/1.0)^2 ~ 3.84
        assert k == pytest.approx(1.959963985**2 - 1.0, rel=1e-6)

    def test_already_significant_needs_nothing(self):
        r = z_test_from_statistic(3.0)
        assert extra_data_to_reject(r, 0.05) == 0.0

    def test_rejected_z_diluted_by_null_data(self):
        r = z_test_from_statistic(3.0)
        k = extra_data_to_accept(r, 0.05)
        assert k == pytest.approx((3.0 / 1.959963985) ** 2 - 1.0, rel=1e-6)

    def test_already_accepted_needs_nothing_to_accept(self):
        r = z_test_from_statistic(0.5)
        assert extra_data_to_accept(r, 0.05) == 0.0

    def test_null_statistic_can_never_reject(self):
        r = z_test_from_statistic(0.0)
        assert math.isinf(extra_data_to_reject(r, 0.05))

    def test_chi_square_scales_linearly(self):
        r = chi_square_gof([55, 45], [0.5, 0.5])  # stat = 1.0, crit_1df = 3.841
        k = extra_data_to_reject(r, 0.05)
        assert k == pytest.approx(3.8414588 / r.statistic - 1.0, abs=1e-4)

    def test_flip_consistency_round_trip(self):
        # A z statistic exactly at the critical value needs nothing either way.
        crit = 1.959963985
        r = z_test_from_statistic(crit)
        assert extra_data_to_reject(r, 0.05) == 0.0
        assert extra_data_to_accept(r, 0.05) == pytest.approx(0.0, abs=1e-9)

    def test_level_validation(self):
        r = z_test_from_statistic(1.0)
        with pytest.raises(InvalidParameterError):
            extra_data_to_reject(r, 0.0)
        with pytest.raises(InvalidParameterError):
            extra_data_to_accept(r, 1.0)

    def test_permutation_family_not_extrapolable(self, rng):
        from repro.stats.tests import permutation_test_mean

        x = rng.normal(0, 1, 10)
        y = rng.normal(0, 1, 10)
        r = permutation_test_mean(x, y, n_resamples=50, seed=0)
        with pytest.raises(InvalidParameterError):
            extra_data_to_reject(r, 0.05)
