"""Descriptive statistics: Welford accumulation, pooling, frequencies."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.stats.descriptive import (
    RunningMoments,
    frequency_table,
    pooled_variance,
    proportions,
)


class TestRunningMoments:
    def test_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, 500)
        acc = RunningMoments()
        acc.update_many(data)
        assert acc.count == 500
        assert acc.mean == pytest.approx(data.mean(), rel=1e-12)
        assert acc.variance == pytest.approx(data.var(ddof=1), rel=1e-10)
        assert acc.std == pytest.approx(data.std(ddof=1), rel=1e-10)

    def test_variance_needs_two_points(self):
        acc = RunningMoments()
        acc.update(1.0)
        with pytest.raises(InsufficientDataError):
            _ = acc.variance

    def test_merge_equals_single_pass(self, rng):
        a = rng.normal(0, 1, 100)
        b = rng.normal(5, 3, 57)
        left = RunningMoments()
        left.update_many(a)
        right = RunningMoments()
        right.update_many(b)
        merged = left.merge(right)
        both = np.concatenate([a, b])
        assert merged.count == 157
        assert merged.mean == pytest.approx(both.mean(), rel=1e-12)
        assert merged.variance == pytest.approx(both.var(ddof=1), rel=1e-10)

    def test_merge_with_empty(self):
        acc = RunningMoments()
        acc.update_many([1.0, 2.0, 3.0])
        merged = acc.merge(RunningMoments())
        assert merged.count == 3
        assert merged.mean == pytest.approx(2.0)

    def test_numerical_stability_large_offset(self):
        acc = RunningMoments()
        acc.update_many([1e9 + i for i in (1.0, 2.0, 3.0)])
        assert acc.variance == pytest.approx(1.0, rel=1e-6)


class TestPooledVariance:
    def test_matches_formula(self, rng):
        x = rng.normal(0, 2, 30)
        y = rng.normal(1, 3, 50)
        expected = (29 * x.var(ddof=1) + 49 * y.var(ddof=1)) / 78
        assert pooled_variance(x, y) == pytest.approx(expected, rel=1e-12)

    def test_requires_two_per_group(self):
        with pytest.raises(InsufficientDataError):
            pooled_variance([1.0], [1.0, 2.0])


class TestFrequencyTable:
    def test_counts(self):
        assert frequency_table(["a", "b", "a", "c", "a"]) == {"a": 3, "b": 1, "c": 1}

    def test_explicit_categories_align_with_zeros(self):
        table = frequency_table(["a", "a"], categories=["a", "b", "c"])
        assert table == {"a": 2, "b": 0, "c": 0}
        assert list(table) == ["a", "b", "c"]

    def test_unknown_category_rejected(self):
        with pytest.raises(InvalidParameterError):
            frequency_table(["a", "z"], categories=["a", "b"])


class TestProportions:
    def test_normalizes(self):
        np.testing.assert_allclose(proportions([2, 3, 5]), [0.2, 0.3, 0.5])

    def test_accepts_mapping(self):
        np.testing.assert_allclose(proportions({"x": 1, "y": 3}), [0.25, 0.75])

    def test_zero_total_rejected(self):
        with pytest.raises(InsufficientDataError):
            proportions([0, 0])

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            proportions([1, -1])
