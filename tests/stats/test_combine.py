"""p-value combination: Fisher and Stouffer."""

import pytest
from scipy import stats as scipy_stats

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.stats.combine import fisher_combine, stouffer_combine


class TestFisher:
    def test_matches_scipy(self, rng):
        ps = rng.uniform(0.001, 0.999, size=8)
        ours = fisher_combine(ps)
        theirs = scipy_stats.combine_pvalues(ps, method="fisher").pvalue
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_single_pvalue_identity(self):
        assert fisher_combine([0.2]) == pytest.approx(0.2, rel=1e-9)

    def test_strong_evidence_dominates(self):
        assert fisher_combine([1e-8, 0.5, 0.5]) < 1e-4

    def test_zero_pvalue_clipped_not_nan(self):
        assert 0.0 <= fisher_combine([0.0, 0.5]) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            fisher_combine([])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            fisher_combine([0.5, 1.2])


class TestStouffer:
    def test_matches_scipy(self, rng):
        ps = rng.uniform(0.01, 0.99, size=6)
        ours = stouffer_combine(ps)
        theirs = scipy_stats.combine_pvalues(ps, method="stouffer").pvalue
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_weighted_matches_scipy(self, rng):
        ps = rng.uniform(0.01, 0.99, size=5)
        w = rng.uniform(0.5, 2.0, size=5)
        ours = stouffer_combine(ps, weights=w)
        theirs = scipy_stats.combine_pvalues(ps, method="stouffer", weights=w).pvalue
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_uniform_halves_stay_half(self):
        assert stouffer_combine([0.5, 0.5, 0.5]) == pytest.approx(0.5, abs=1e-12)

    def test_weight_validation(self):
        with pytest.raises(InvalidParameterError):
            stouffer_combine([0.5, 0.5], weights=[1.0])
        with pytest.raises(InvalidParameterError):
            stouffer_combine([0.5, 0.5], weights=[1.0, 0.0])
