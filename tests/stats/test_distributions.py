"""Distribution layer: agreement with scipy.stats and internal consistency."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import InvalidParameterError
from repro.stats.distributions import ChiSquared, Normal, StudentT


class TestNormal:
    def test_standard_cdf_known_values(self):
        n = Normal()
        assert n.cdf(0.0) == pytest.approx(0.5)
        assert n.cdf(1.959963985) == pytest.approx(0.975, abs=1e-9)
        assert n.cdf(-1.959963985) == pytest.approx(0.025, abs=1e-9)

    def test_cdf_matches_scipy_across_range(self):
        n = Normal(mu=1.5, sigma=2.0)
        xs = np.linspace(-8, 10, 50)
        np.testing.assert_allclose(
            n.cdf(xs), scipy_stats.norm.cdf(xs, loc=1.5, scale=2.0), rtol=1e-12
        )

    def test_pdf_matches_scipy(self):
        n = Normal(mu=-0.5, sigma=0.7)
        xs = np.linspace(-4, 3, 30)
        np.testing.assert_allclose(
            n.pdf(xs), scipy_stats.norm.pdf(xs, loc=-0.5, scale=0.7), rtol=1e-12
        )

    def test_sf_accurate_in_far_tail(self):
        n = Normal()
        # 1 - cdf would lose precision out here; sf must not.
        assert n.sf(10.0) == pytest.approx(scipy_stats.norm.sf(10.0), rel=1e-10)
        assert n.sf(10.0) > 0

    def test_ppf_inverts_cdf(self):
        n = Normal(mu=3.0, sigma=0.5)
        qs = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(n.cdf(n.ppf(qs)), qs, rtol=1e-10)

    def test_isf_is_upper_quantile(self):
        n = Normal()
        assert n.isf(0.025) == pytest.approx(1.959963985, abs=1e-8)

    def test_rejects_bad_sigma(self):
        with pytest.raises(InvalidParameterError):
            Normal(sigma=0.0)

    def test_rejects_quantile_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            Normal().ppf(0.0)
        with pytest.raises(InvalidParameterError):
            Normal().isf(1.0)


class TestStudentT:
    @pytest.mark.parametrize("df", [1, 2, 5, 10, 30, 120])
    def test_cdf_matches_scipy(self, df):
        t = StudentT(df)
        xs = np.linspace(-6, 6, 41)
        np.testing.assert_allclose(t.cdf(xs), scipy_stats.t.cdf(xs, df), rtol=1e-10)

    @pytest.mark.parametrize("df", [3, 7, 25])
    def test_sf_matches_scipy(self, df):
        t = StudentT(df)
        xs = np.linspace(-5, 5, 31)
        np.testing.assert_allclose(t.sf(xs), scipy_stats.t.sf(xs, df), rtol=1e-10)

    @pytest.mark.parametrize("df", [2, 9, 50])
    def test_pdf_matches_scipy(self, df):
        t = StudentT(df)
        xs = np.linspace(-4, 4, 17)
        np.testing.assert_allclose(t.pdf(xs), scipy_stats.t.pdf(xs, df), rtol=1e-10)

    @pytest.mark.parametrize("df", [1, 4, 11, 60])
    def test_ppf_inverts_cdf(self, df):
        t = StudentT(df)
        qs = np.linspace(0.02, 0.98, 25)
        np.testing.assert_allclose(t.cdf(t.ppf(qs)), qs, rtol=1e-8)

    def test_symmetry(self):
        t = StudentT(8)
        assert t.cdf(-1.3) == pytest.approx(t.sf(1.3), rel=1e-12)

    def test_converges_to_normal_at_high_df(self):
        t = StudentT(10_000)
        assert t.cdf(1.96) == pytest.approx(Normal().cdf(1.96), abs=1e-4)

    def test_rejects_bad_df(self):
        with pytest.raises(InvalidParameterError):
            StudentT(0)


class TestChiSquared:
    @pytest.mark.parametrize("df", [1, 2, 3, 10, 50])
    def test_cdf_matches_scipy(self, df):
        c = ChiSquared(df)
        xs = np.linspace(0.01, 4 * df, 30)
        np.testing.assert_allclose(c.cdf(xs), scipy_stats.chi2.cdf(xs, df), rtol=1e-10)

    @pytest.mark.parametrize("df", [1, 5, 20])
    def test_sf_matches_scipy(self, df):
        c = ChiSquared(df)
        xs = np.linspace(0.01, 5 * df, 25)
        np.testing.assert_allclose(c.sf(xs), scipy_stats.chi2.sf(xs, df), rtol=1e-10)

    @pytest.mark.parametrize("df", [2, 7, 31])
    def test_pdf_matches_scipy(self, df):
        c = ChiSquared(df)
        xs = np.linspace(0.05, 3 * df, 20)
        np.testing.assert_allclose(c.pdf(xs), scipy_stats.chi2.pdf(xs, df), rtol=1e-9)

    def test_cdf_zero_below_support(self):
        c = ChiSquared(4)
        assert c.cdf(-1.0) == 0.0
        assert c.sf(-1.0) == 1.0
        assert c.pdf(-0.5) == 0.0

    @pytest.mark.parametrize("df", [1, 6, 40])
    def test_ppf_isf_consistency(self, df):
        c = ChiSquared(df)
        qs = np.linspace(0.05, 0.95, 15)
        np.testing.assert_allclose(c.cdf(c.ppf(qs)), qs, rtol=1e-8)
        np.testing.assert_allclose(c.sf(c.isf(qs)), qs, rtol=1e-8)

    def test_known_critical_value(self):
        # chi2 with 1 df at alpha=.05 -> 3.841...
        assert ChiSquared(1).isf(0.05) == pytest.approx(3.8414588, abs=1e-5)

    def test_rejects_bad_df(self):
        with pytest.raises(InvalidParameterError):
            ChiSquared(-1)
