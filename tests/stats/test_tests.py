"""Hypothesis tests: agreement with scipy implementations and edge cases."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.stats.tests import (
    TestFamily,
    chi_square_gof,
    chi_square_independence,
    chi_square_two_sample,
    permutation_test_mean,
    proportion_z_test,
    t_test_one_sample,
    t_test_two_sample,
    z_test_from_statistic,
    z_test_one_sample,
    z_test_two_sample,
)


class TestZTests:
    def test_from_statistic_two_sided(self):
        r = z_test_from_statistic(1.959963985)
        assert r.p_value == pytest.approx(0.05, abs=1e-8)
        assert r.family is TestFamily.Z

    def test_from_statistic_one_sided(self):
        assert z_test_from_statistic(1.6448536, "greater").p_value == pytest.approx(
            0.05, abs=1e-6
        )
        assert z_test_from_statistic(-1.6448536, "less").p_value == pytest.approx(
            0.05, abs=1e-6
        )

    def test_from_statistic_zero_is_uninformative(self):
        assert z_test_from_statistic(0.0).p_value == pytest.approx(1.0)

    def test_one_sample_matches_formula(self, rng):
        x = rng.normal(0.3, 2.0, size=100)
        r = z_test_one_sample(x, popmean=0.0, popsd=2.0)
        expected_z = x.mean() / (2.0 / np.sqrt(100))
        assert r.statistic == pytest.approx(expected_z)
        assert 0 <= r.p_value <= 1

    def test_two_sample_detects_shift(self, rng):
        x = rng.normal(0, 1, 400)
        y = rng.normal(0.5, 1, 400)
        r = z_test_two_sample(x, y, sd_x=1.0, sd_y=1.0)
        assert r.p_value < 1e-6
        assert r.effect_size == pytest.approx(x.mean() - y.mean(), abs=1e-9)

    def test_rejects_bad_popsd(self):
        with pytest.raises(InvalidParameterError):
            z_test_one_sample([1.0, 2.0], 0.0, popsd=-1.0)

    def test_rejects_unknown_alternative(self):
        with pytest.raises(InvalidParameterError):
            z_test_from_statistic(1.0, "sideways")


class TestTTests:
    def test_welch_matches_scipy(self, rng):
        x = rng.normal(0, 1, 60)
        y = rng.normal(0.4, 2.0, 45)
        r = t_test_two_sample(x, y)
        s = scipy_stats.ttest_ind(x, y, equal_var=False)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-10)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)
        assert r.df == pytest.approx(s.df, rel=1e-9)

    def test_student_matches_scipy(self, rng):
        x = rng.normal(0, 1, 30)
        y = rng.normal(0.2, 1, 50)
        r = t_test_two_sample(x, y, equal_var=True)
        s = scipy_stats.ttest_ind(x, y, equal_var=True)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-10)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)
        assert r.df == 78.0

    def test_one_sample_matches_scipy(self, rng):
        x = rng.normal(0.5, 1, 40)
        r = t_test_one_sample(x, popmean=0.0)
        s = scipy_stats.ttest_1samp(x, 0.0)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-10)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)

    @pytest.mark.parametrize("alternative,scipy_alt", [
        ("greater", "greater"), ("less", "less"),
    ])
    def test_one_sided_matches_scipy(self, rng, alternative, scipy_alt):
        x = rng.normal(0.3, 1, 50)
        y = rng.normal(0.0, 1, 50)
        r = t_test_two_sample(x, y, alternative=alternative)
        s = scipy_stats.ttest_ind(x, y, equal_var=False, alternative=scipy_alt)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)

    def test_identical_constant_samples_accept(self):
        r = t_test_two_sample([2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        assert r.p_value == 1.0
        assert r.statistic == 0.0

    def test_different_constant_samples_raise(self):
        with pytest.raises(InsufficientDataError):
            t_test_two_sample([1.0, 1.0], [2.0, 2.0])

    def test_too_few_observations(self):
        with pytest.raises(InsufficientDataError):
            t_test_two_sample([1.0], [2.0, 3.0])

    def test_result_carries_support_size(self, rng):
        x = rng.normal(0, 1, 12)
        y = rng.normal(0, 1, 9)
        assert t_test_two_sample(x, y).n_obs == 21


class TestProportionTest:
    def test_matches_manual_pooled_z(self):
        r = proportion_z_test(30, 100, 45, 100)
        p_pool = 75 / 200
        se = np.sqrt(p_pool * (1 - p_pool) * (2 / 100))
        assert r.statistic == pytest.approx((0.30 - 0.45) / se)

    def test_equal_proportions_uninformative(self):
        r = proportion_z_test(10, 50, 10, 50)
        assert r.statistic == 0.0
        assert r.p_value == pytest.approx(1.0)

    def test_all_success_degenerate(self):
        r = proportion_z_test(50, 50, 50, 50)
        assert r.p_value == 1.0

    def test_rejects_invalid_counts(self):
        with pytest.raises(InvalidParameterError):
            proportion_z_test(60, 50, 10, 50)

    def test_rejects_empty_group(self):
        with pytest.raises(InsufficientDataError):
            proportion_z_test(0, 0, 5, 10)


class TestChiSquareGof:
    def test_matches_scipy_uniform(self, rng):
        observed = rng.integers(20, 60, size=5)
        expected = np.full(5, 0.2)
        r = chi_square_gof(observed, expected)
        s = scipy_stats.chisquare(observed, f_exp=observed.sum() * expected)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-12)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)
        assert r.df == 4.0

    def test_matches_scipy_nonuniform(self):
        observed = [50, 30, 20]
        expected = [0.5, 0.3, 0.2]
        r = chi_square_gof(observed, expected)
        s = scipy_stats.chisquare(observed, f_exp=[50, 30, 20])
        assert r.statistic == pytest.approx(s.statistic, abs=1e-12)
        assert r.p_value == pytest.approx(1.0)

    def test_accepts_mappings(self):
        r = chi_square_gof({"a": 40, "b": 60}, {"a": 0.5, "b": 0.5})
        s = scipy_stats.chisquare([40, 60])
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)

    def test_drops_zero_probability_cells(self):
        r = chi_square_gof([10, 20, 0], [0.4, 0.6, 0.0])
        assert r.df == 1.0

    def test_observed_in_zero_cell_rejected(self):
        with pytest.raises(InvalidParameterError):
            chi_square_gof([10, 20, 5], [0.4, 0.6, 0.0])

    def test_unnormalized_expected_renormalized(self):
        a = chi_square_gof([10, 20], [1.0, 1.0])
        b = chi_square_gof([10, 20], [0.5, 0.5])
        assert a.statistic == pytest.approx(b.statistic)

    def test_min_expected_guard(self):
        with pytest.raises(InsufficientDataError):
            chi_square_gof([3, 2], [0.5, 0.5], min_expected=5.0)

    def test_empty_observed_rejected(self):
        with pytest.raises(InsufficientDataError):
            chi_square_gof([0, 0], [0.5, 0.5])


class TestChiSquareIndependence:
    def test_matches_scipy(self):
        table = [[10, 20, 30], [6, 9, 17]]
        r = chi_square_independence(table)
        s = scipy_stats.chi2_contingency(np.asarray(table), correction=False)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-12)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)
        assert r.df == 2.0

    def test_drops_empty_rows_and_columns(self):
        table = [[10, 0, 20], [5, 0, 9], [0, 0, 0]]
        r = chi_square_independence(table)
        s = scipy_stats.chi2_contingency(np.array([[10, 20], [5, 9]]), correction=False)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-12)

    def test_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            chi_square_independence([[1, -2], [3, 4]])

    def test_collapsed_table_raises(self):
        with pytest.raises(InsufficientDataError):
            chi_square_independence([[5, 0], [7, 0]])


class TestChiSquareTwoSample:
    def test_equivalent_to_stacked_independence(self):
        x = [30, 50, 20]
        y = [25, 45, 35]
        r = chi_square_two_sample(x, y)
        s = scipy_stats.chi2_contingency(np.array([x, y]), correction=False)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-12)
        assert r.p_value == pytest.approx(s.pvalue, rel=1e-9)

    def test_ignores_mutually_empty_categories(self):
        r = chi_square_two_sample([30, 0, 20], [25, 0, 35])
        s = scipy_stats.chi2_contingency(np.array([[30, 20], [25, 35]]), correction=False)
        assert r.statistic == pytest.approx(s.statistic, rel=1e-12)

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(InvalidParameterError):
            chi_square_two_sample([1, 2], [1, 2, 3])

    def test_single_category_raises(self):
        with pytest.raises(InsufficientDataError):
            chi_square_two_sample([30, 0], [25, 0])


class TestPermutationTest:
    def test_null_p_value_is_calibrated(self, rng):
        x = rng.normal(0, 1, 30)
        y = rng.normal(0, 1, 30)
        r = permutation_test_mean(x, y, n_resamples=500, seed=1)
        assert r.p_value > 0.01

    def test_detects_large_shift(self, rng):
        x = rng.normal(0, 1, 30)
        y = rng.normal(3, 1, 30)
        r = permutation_test_mean(x, y, n_resamples=500, seed=2)
        assert r.p_value < 0.02

    def test_p_value_never_zero(self, rng):
        x = rng.normal(0, 1, 20)
        y = rng.normal(10, 1, 20)
        r = permutation_test_mean(x, y, n_resamples=100, seed=3)
        assert r.p_value >= 1.0 / 101.0

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(0, 1, 15)
        y = rng.normal(1, 1, 15)
        a = permutation_test_mean(x, y, n_resamples=200, seed=9)
        b = permutation_test_mean(x, y, n_resamples=200, seed=9)
        assert a.p_value == b.p_value

    def test_rejects_bad_resamples(self):
        with pytest.raises(InvalidParameterError):
            permutation_test_mean([1.0], [2.0], n_resamples=0)

    def test_null_p_values_are_uniform(self, rng):
        """Distributional regression for the vectorized resampler.

        Under a true null, permutation p-values are (discretely) uniform on
        (0, 1]; the batched ``rng.permuted`` implementation must preserve
        that.  Checks mean and the empirical CDF at 0.25/0.5/0.75 over 200
        independent null datasets.
        """
        p_values = np.array(
            [
                permutation_test_mean(
                    rng.normal(0, 1, 12), rng.normal(0, 1, 12),
                    n_resamples=99, seed=int(1000 + i),
                ).p_value
                for i in range(200)
            ]
        )
        assert abs(p_values.mean() - 0.5) < 0.08
        for q in (0.25, 0.5, 0.75):
            assert abs((p_values <= q).mean() - q) < 0.12

    def test_agrees_with_t_test_on_moderate_samples(self, rng):
        """Permutation and Welch p-values track each other closely."""
        from repro.stats.tests import t_test_two_sample

        x = rng.normal(0.0, 1.0, 40)
        y = rng.normal(0.6, 1.0, 40)
        perm = permutation_test_mean(x, y, n_resamples=4000, seed=5)
        welch = t_test_two_sample(x, y)
        assert abs(perm.p_value - welch.p_value) < 0.05

    def test_chunked_resampling_matches_single_chunk(self, rng):
        """Chunk boundaries must not change the consumed random stream."""
        import repro.stats.tests as tests_module

        x = rng.normal(0, 1, 10)
        y = rng.normal(0.5, 1, 10)
        full = permutation_test_mean(x, y, n_resamples=300, seed=17)
        original = tests_module._PERMUTATION_CHUNK_BUDGET
        try:
            # Force many tiny chunks: 40 floats -> chunk of 2 rows.
            tests_module._PERMUTATION_CHUNK_BUDGET = 40
            chunked = permutation_test_mean(x, y, n_resamples=300, seed=17)
        finally:
            tests_module._PERMUTATION_CHUNK_BUDGET = original
        assert chunked.p_value == full.p_value


class TestTestResult:
    def test_reject_at(self):
        r = z_test_from_statistic(2.5)
        assert r.reject_at(0.05)
        assert not r.reject_at(0.001)

    def test_reject_at_validates_level(self):
        r = z_test_from_statistic(1.0)
        with pytest.raises(InvalidParameterError):
            r.reject_at(0.0)

    def test_details_are_read_only(self, rng):
        x = rng.normal(0, 1, 10)
        y = rng.normal(0, 1, 10)
        r = t_test_two_sample(x, y)
        with pytest.raises(TypeError):
            r.details["mean_x"] = 99.0

    def test_invalid_p_value_rejected(self):
        from repro.stats.tests import TestResult

        with pytest.raises(InvalidParameterError):
            TestResult(name="x", family=TestFamily.Z, statistic=0.0, p_value=1.5)
