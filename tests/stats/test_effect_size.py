"""Effect-size measures: known values, symmetry, and validation."""

import math

import numpy as np
import pytest

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.stats.effect_size import (
    EffectMagnitude,
    classify_cohen_d,
    classify_cohen_w,
    cohen_d,
    cohen_w,
    cohen_w_from_counts,
    cramers_v,
    glass_delta,
    hedges_g,
    phi_coefficient,
)


class TestCohenD:
    def test_unit_shift_unit_variance(self, rng):
        x = rng.normal(1.0, 1.0, 5000)
        y = rng.normal(0.0, 1.0, 5000)
        assert cohen_d(x, y) == pytest.approx(1.0, abs=0.08)

    def test_sign_convention(self):
        assert cohen_d([0.0, 1.0, 2.0], [5.0, 6.0, 7.0]) < 0
        assert cohen_d([5.0, 6.0, 7.0], [0.0, 1.0, 2.0]) > 0

    def test_antisymmetric(self, rng):
        x = rng.normal(0, 1, 40)
        y = rng.normal(1, 1, 40)
        assert cohen_d(x, y) == pytest.approx(-cohen_d(y, x))

    def test_zero_for_identical_constants(self):
        assert cohen_d([3.0, 3.0], [3.0, 3.0]) == 0.0

    def test_infinite_for_separated_constants(self):
        assert math.isinf(cohen_d([1.0, 1.0], [2.0, 2.0]))

    def test_requires_two_per_group(self):
        with pytest.raises(InsufficientDataError):
            cohen_d([1.0], [1.0, 2.0])


class TestGlassAndHedges:
    def test_glass_uses_control_sd(self):
        x = [10.0, 12.0, 14.0]
        control = [0.0, 2.0, 4.0]  # sd = 2
        assert glass_delta(x, control) == pytest.approx((12.0 - 2.0) / 2.0)

    def test_hedges_shrinks_toward_zero(self, rng):
        x = rng.normal(1, 1, 10)
        y = rng.normal(0, 1, 10)
        d = cohen_d(x, y)
        g = hedges_g(x, y)
        assert abs(g) < abs(d)
        assert np.sign(g) == np.sign(d)


class TestCohenW:
    def test_zero_when_distributions_match(self):
        assert cohen_w([0.5, 0.3, 0.2], [0.5, 0.3, 0.2]) == pytest.approx(0.0)

    def test_known_value(self):
        # w = sqrt(sum((o-e)^2/e)) = sqrt((.1^2/.5)+(.1^2/.5)) = 0.2
        assert cohen_w([0.6, 0.4], [0.5, 0.5]) == pytest.approx(0.2)

    def test_from_counts_matches_probability_form(self):
        w1 = cohen_w_from_counts([60, 40], [50, 50])
        w2 = cohen_w([0.6, 0.4], [0.5, 0.5])
        assert w1 == pytest.approx(w2)

    def test_rejects_unnormalized_vectors(self):
        with pytest.raises(InvalidParameterError):
            cohen_w([0.7, 0.6], [0.5, 0.5])

    def test_rejects_zero_expected(self):
        with pytest.raises(InvalidParameterError):
            cohen_w([0.5, 0.5], [1.0, 0.0])

    def test_counts_with_empty_expected_cell_dropped(self):
        w = cohen_w_from_counts([60, 40, 0], [50, 50, 0])
        assert w == pytest.approx(0.2)


class TestCramersVAndPhi:
    def test_perfect_association(self):
        assert cramers_v([[50, 0], [0, 50]]) == pytest.approx(1.0)

    def test_no_association(self):
        assert cramers_v([[25, 25], [25, 25]]) == pytest.approx(0.0)

    def test_phi_signed(self):
        assert phi_coefficient([[50, 0], [0, 50]]) == pytest.approx(1.0)
        assert phi_coefficient([[0, 50], [50, 0]]) == pytest.approx(-1.0)

    def test_phi_zero_table(self):
        assert phi_coefficient([[0, 0], [0, 0]]) == 0.0

    def test_cramers_v_requires_2d(self):
        with pytest.raises(InvalidParameterError):
            cramers_v([[1, 2]])

    def test_phi_requires_2x2(self):
        with pytest.raises(InvalidParameterError):
            phi_coefficient([[1, 2, 3], [4, 5, 6]])


class TestMagnitudeBands:
    @pytest.mark.parametrize("d,expected", [
        (0.05, EffectMagnitude.NEGLIGIBLE),
        (0.2, EffectMagnitude.SMALL),
        (0.5, EffectMagnitude.MEDIUM),
        (0.79, EffectMagnitude.MEDIUM),
        (0.8, EffectMagnitude.LARGE),
        (-1.2, EffectMagnitude.LARGE),
    ])
    def test_cohen_d_bands(self, d, expected):
        assert classify_cohen_d(d) is expected

    @pytest.mark.parametrize("w,expected", [
        (0.01, EffectMagnitude.NEGLIGIBLE),
        (0.1, EffectMagnitude.SMALL),
        (0.3, EffectMagnitude.MEDIUM),
        (0.5, EffectMagnitude.LARGE),
    ])
    def test_cohen_w_bands(self, w, expected):
        assert classify_cohen_w(w) is expected
