"""ExplorationService: dispatch, lifecycle, admission control, envelopes."""

import json

import pytest

from repro.api.protocol import PROTOCOL_VERSION, CreateSession, Show
from repro.api.service import ExplorationService
from repro.errors import InvalidParameterError
from repro.exploration.export import session_to_dict
from repro.exploration.predicate import Eq, Not
from repro.service import SessionManager


@pytest.fixture()
def service(census):
    svc = ExplorationService(max_sessions=4)
    svc.register_dataset(census, name="census")
    return svc


def _create(service, **kwargs):
    resp = service.handle(CreateSession(dataset="census", **kwargs))
    assert resp.ok, resp.error
    return resp.result["session_id"]


class TestLifecycle:
    def test_full_lifecycle_over_wire_dicts(self, service):
        """create → show → star → override → export → close, as raw JSON."""
        sid = service.handle_dict(
            {"v": 1, "cmd": "create_session", "dataset": "census"}
        )["result"]["session_id"]
        # two age panels under complementary filters -> rule-3 comparison
        for where in (
            {"op": "eq", "column": "sex", "value": "Female"},
            {"op": "not", "operand": {"op": "eq", "column": "sex",
                                      "value": "Female"}},
        ):
            env = service.handle_dict({"v": 1, "cmd": "show", "session_id": sid,
                                       "attribute": "age", "where": where})
            assert env["ok"], env
        hyp_id = env["result"]["hypothesis"]["id"]
        env = service.handle_dict({"v": 1, "cmd": "star", "session_id": sid,
                                   "hypothesis_id": hyp_id})
        assert env["result"]["hypothesis"]["starred"] is True
        env = service.handle_dict({"v": 1, "cmd": "override", "session_id": sid,
                                   "hypothesis_id": hyp_id})
        assert env["result"]["revised_id"] == hyp_id
        env = service.handle_dict({"v": 1, "cmd": "export", "session_id": sid})
        assert env["result"]["schema_version"] == 1
        overridden = [h for h in env["result"]["hypotheses"]
                      if h["id"] == hyp_id][0]
        assert overridden["kind"] == "override"
        env = service.handle_dict({"v": 1, "cmd": "close_session",
                                   "session_id": sid})
        assert env["result"] == {"closed": sid}
        env = service.handle_dict({"v": 1, "cmd": "wealth", "session_id": sid})
        assert env["error"]["code"] == "SESSION"

    def test_every_envelope_is_json_serializable(self, service):
        sid = _create(service)
        service.handle(Show(session_id=sid, attribute="education",
                            where=Eq("sex", "Female")))
        for cmd in ("wealth", "decision_log", "export", "stats"):
            env = service.handle_dict({"v": 1, "cmd": cmd, "session_id": sid})
            json.dumps(env)  # must not raise (numpy scalars collapsed)
        json.dumps(service.handle_dict({"v": 1, "cmd": "list_datasets"}))

    def test_show_payload_carries_histogram_and_hypothesis(self, service, census):
        sid = _create(service)
        resp = service.handle(Show(session_id=sid, attribute="education",
                                   where=Eq("sex", "Female")))
        result = resp.result
        assert result["histogram"]["attribute"] == "education"
        assert sum(result["histogram"]["counts"]) == result["histogram"]["support"]
        assert result["hypothesis"]["kind"] == "rule2-distribution-shift"
        assert result["visualization"]["predicate"] == {
            "op": "eq", "column": "sex", "value": "Female"
        }

    def test_descriptive_show_tracks_no_hypothesis(self, service):
        sid = _create(service)
        resp = service.handle(Show(session_id=sid, attribute="education",
                                   where=Eq("sex", "Female"), descriptive=True))
        assert resp.ok and resp.result["hypothesis"] is None

    def test_export_is_the_canonical_session_shape(self, service):
        sid = _create(service)
        service.handle(Show(session_id=sid, attribute="education",
                            where=Eq("sex", "Female")))
        exported = service.handle_dict(
            {"v": 1, "cmd": "export", "session_id": sid}
        )["result"]
        assert exported == session_to_dict(service.manager.session(sid))

    def test_export_round_trips_through_load_session_records(self, service,
                                                             tmp_path):
        from repro.exploration.export import load_session_records

        sid = _create(service)
        service.handle(Show(session_id=sid, attribute="education",
                            where=Eq("sex", "Female")))
        exported = service.handle_dict(
            {"v": 1, "cmd": "export", "session_id": sid}
        )["result"]
        path = tmp_path / "session.json"
        path.write_text(json.dumps(exported))
        records = load_session_records(path)
        assert records == exported

    def test_stats_service_and_session_scoped(self, service):
        sid = _create(service)
        service.handle(Show(session_id=sid, attribute="education",
                            where=Eq("sex", "Female")))
        svc_stats = service.handle_dict({"v": 1, "cmd": "stats"})["result"]
        assert svc_stats["sessions"] == 1 and svc_stats["shows"] >= 1
        assert svc_stats["max_sessions"] == 4
        sess_stats = service.handle_dict(
            {"v": 1, "cmd": "stats", "session_id": sid}
        )["result"]
        assert sess_stats["session_id"] == sid
        assert sess_stats["shows"] == 1


class TestAdmissionControl:
    def test_session_cap_returns_admission_rejected(self, census):
        svc = ExplorationService(max_sessions=2)
        svc.register_dataset(census, name="census")
        _create(svc)
        _create(svc)
        resp = svc.handle(CreateSession(dataset="census"))
        assert not resp.ok
        assert resp.error.code == "ADMISSION_REJECTED"
        assert resp.error.details == {"active_sessions": 2, "max_sessions": 2,
                                      "admission_policy": "reject"}

    def test_closing_a_session_frees_capacity(self, census):
        svc = ExplorationService(max_sessions=1)
        svc.register_dataset(census, name="census")
        sid = _create(svc)
        assert not svc.handle(CreateSession(dataset="census")).ok
        svc.handle_dict({"v": 1, "cmd": "close_session", "session_id": sid})
        assert svc.handle(CreateSession(dataset="census")).ok

    def test_uncapped_service_admits_freely(self, census):
        svc = ExplorationService(max_sessions=None)
        svc.register_dataset(census, name="census")
        for _ in range(8):
            _create(svc)
        assert len(svc.manager.session_ids()) == 8

    def test_invalid_cap_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExplorationService(max_sessions=0)

    def test_wealth_exhausted_show_gets_gauge_in_details(self, census):
        svc = ExplorationService(manager=SessionManager())
        svc.register_dataset(census, name="census")
        # gamma=3 affords only ~3 misses before the ledger is empty
        sid = _create(svc, procedure="gamma-fixed", procedure_kwargs={"gamma": 3.0})
        dead_ends = [("sex", "workclass", "Private"),
                     ("sex", "race", "GroupB"),
                     ("education", "native_region", "North"),
                     ("sex", "workclass", "Government")]
        for target, attr, cat in dead_ends:
            resp = svc.handle(Show(session_id=sid, attribute=target,
                                   where=Eq(attr, cat)))
            if not resp.ok:
                break
        assert svc.manager.session(sid).is_exhausted
        resp = svc.handle(Show(session_id=sid, attribute="salary_over_50k",
                               where=Eq("education", "PhD")))
        assert not resp.ok
        assert resp.error.code == "WEALTH_EXHAUSTED"
        assert resp.error.details["exhausted"] is True
        assert resp.error.details["num_tested"] >= 3
        # the rejection consumed nothing: no new hypothesis was tracked
        assert len(svc.manager.session(sid).history()) == \
            resp.error.details["num_tested"]

    def test_exhausted_session_still_serves_descriptive_and_reads(self, census):
        svc = ExplorationService()
        svc.register_dataset(census, name="census")
        sid = _create(svc, procedure="gamma-fixed", procedure_kwargs={"gamma": 3.0})
        for target, attr, cat in [("sex", "workclass", "Private"),
                                  ("sex", "race", "GroupB"),
                                  ("education", "native_region", "North"),
                                  ("sex", "workclass", "Government")]:
            svc.handle(Show(session_id=sid, attribute=target, where=Eq(attr, cat)))
        assert svc.manager.session(sid).is_exhausted
        resp = svc.handle(Show(session_id=sid, attribute="education",
                               descriptive=True))
        assert resp.ok  # descriptive panels spend no wealth
        assert svc.handle_dict({"v": 1, "cmd": "wealth",
                                "session_id": sid})["ok"]
        assert svc.handle_dict({"v": 1, "cmd": "export",
                                "session_id": sid})["ok"]


class TestErrorEnvelopes:
    def test_protocol_violations_never_raise(self, service):
        for bad in (
            {"cmd": "show"},                       # missing v
            {"v": 999, "cmd": "show"},             # wrong version
            {"v": 1, "cmd": "nope"},               # unknown verb
            {"v": 1, "cmd": "show", "extra": 1},   # unknown field
            [],                                    # not an object
        ):
            resp = service.handle(bad)
            assert not resp.ok
            assert resp.error.code == "PROTOCOL"

    def test_typed_command_with_wrong_version_rejected(self, service):
        resp = service.handle(Show(session_id="s", attribute="a",
                                   v=PROTOCOL_VERSION + 1))
        assert resp.error.code == "PROTOCOL"

    def test_library_errors_map_to_stable_codes(self, service):
        sid = _create(service)
        cases = [
            ({"v": 1, "cmd": "show", "session_id": "ghost",
              "attribute": "age"}, "SESSION"),
            ({"v": 1, "cmd": "show", "session_id": sid,
              "attribute": "no_such_column"}, "SCHEMA"),
            ({"v": 1, "cmd": "show", "session_id": sid, "attribute": "sex",
              "where": {"op": "eq", "column": "sex", "value": "Martian"}},
             "PREDICATE"),
            ({"v": 1, "cmd": "create_session", "dataset": "census",
              "procedure": "not-a-procedure"}, "UNKNOWN_PROCEDURE"),
            ({"v": 1, "cmd": "star", "session_id": sid,
              "hypothesis_id": 999}, "SESSION"),
        ]
        for request, code in cases:
            resp = service.handle(request)
            assert not resp.ok
            assert resp.error.code == code, (request, resp.error)

    def test_no_traceback_material_in_envelopes(self, service):
        resp = service.handle({"v": 1, "cmd": "show", "session_id": "ghost",
                               "attribute": "age"})
        wire = json.dumps(resp.to_dict())
        assert "Traceback" not in wire
        assert "repro/" not in wire  # no file paths either


class TestDecisionLogParity:
    def test_service_log_matches_direct_manager_log(self, census):
        """The wire boundary adds zero decisions: driving panels through
        handle() and through SessionManager.show() yields byte-identical
        decision logs."""
        panels = [("education", Eq("sex", "Female")),
                  ("age", Eq("sex", "Female")),
                  ("age", Not(Eq("sex", "Female"))),
                  ("occupation", Eq("education", "PhD"))]

        svc = ExplorationService()
        svc.register_dataset(census, name="census")
        sid = _create(svc)
        for attribute, where in panels:
            assert svc.handle(Show(session_id=sid, attribute=attribute,
                                   where=where)).ok
        via_service = svc.manager.decision_log_bytes(sid)

        manager = SessionManager()
        manager.register_dataset(census, name="census")
        direct = manager.create_session("census")
        for attribute, where in panels:
            manager.show(direct, attribute, where=where)
        assert via_service == manager.decision_log_bytes(direct)
