"""Client-side bounded retry with jitter (the router-era transport rule).

A connection-level failure means "the socket died", never "the command
failed" — so the client may retry exactly when resending cannot
double-apply: read-only verbs, idem-stamped commands, and pipelines
whose every mutating inner command is stamped.  Everything else raises
on the first failure, because the worker may or may not have executed
it.  No sockets here: the transport is faked so the retry policy itself
is what's under test.
"""

from __future__ import annotations

import json

import pytest

import repro.api.client as client_mod
from repro.api.client import (
    RETRY_ATTEMPTS,
    RETRY_BASE_DELAY,
    Client,
    _is_idempotent,
)

_ENVELOPE = {"v": 2, "ok": True, "result": {"wealth": 0.05}}


class _FakeResponse:
    status = 200

    def __init__(self, payload):
        self._raw = json.dumps(payload).encode()

    def read(self):
        return self._raw


class _FakeConn:
    """One scripted connection: fails on request, or answers."""

    def __init__(self, fail: bool, payload=None):
        self.fail = fail
        self.payload = payload

    def request(self, *args, **kwargs):
        if self.fail:
            raise ConnectionError("socket died")

    def getresponse(self):
        return _FakeResponse(self.payload)

    def close(self):
        pass


def _scripted_client(script, **kwargs) -> tuple[Client, list[int]]:
    """A client whose transport follows *script* (list of _FakeConn)
    and whose backoff sleeps are recorded instead of slept."""
    client = Client("127.0.0.1", 1, **kwargs)
    plan = iter(script)
    client._connection = lambda: next(plan)
    sleeps: list[int] = []
    client._retry_sleep = sleeps.append
    return client, sleeps


class TestRetryPolicy:
    def test_read_only_request_survives_transient_failures(self):
        client, sleeps = _scripted_client([
            _FakeConn(True), _FakeConn(True), _FakeConn(False, _ENVELOPE),
        ])
        status, envelope = client._post(
            {"v": 2, "cmd": "wealth", "session_id": "s1"})
        assert status == 200 and envelope == _ENVELOPE
        assert sleeps == [0, 1, 2]  # attempt index fed to the backoff

    def test_idem_stamped_mutation_is_retried(self):
        client, _ = _scripted_client([
            _FakeConn(True), _FakeConn(False, _ENVELOPE),
        ])
        _, envelope = client._post(
            {"v": 2, "cmd": "star", "session_id": "s1",
             "hypothesis_id": 1, "idem": "tok"})
        assert envelope == _ENVELOPE

    def test_bare_mutation_fails_fast(self):
        client, sleeps = _scripted_client([
            _FakeConn(True), _FakeConn(False, _ENVELOPE),
        ])
        with pytest.raises(ConnectionError):
            client._post({"v": 2, "cmd": "star", "session_id": "s1",
                          "hypothesis_id": 1})
        assert sleeps == [0]  # one attempt, no second connection

    def test_retries_are_bounded(self):
        attempts = 3
        client, sleeps = _scripted_client(
            [_FakeConn(True)] * (attempts + 5),
            retry_attempts=attempts,
        )
        with pytest.raises(ConnectionError):
            client._post({"v": 2, "cmd": "wealth", "session_id": "s1"})
        assert sleeps == [0, 1, 2]  # exactly `attempts` connections

    def test_retry_attempts_validated(self):
        with pytest.raises(ValueError):
            Client("127.0.0.1", 1, retry_attempts=0)

    def test_defaults_exported(self):
        client = Client("127.0.0.1", 1)
        assert client.retry_attempts == RETRY_ATTEMPTS >= 2
        assert client.retry_base_delay == RETRY_BASE_DELAY > 0


class TestBackoffShape:
    def test_first_retry_is_immediate_then_jittered_exponential(
        self, monkeypatch
    ):
        slept: list[float] = []
        monkeypatch.setattr(client_mod.time, "sleep", slept.append)
        # Worst-case jitter: uniform(0, bound) -> bound.
        monkeypatch.setattr(client_mod.random, "uniform", lambda a, b: b)
        client = Client("127.0.0.1", 1, retry_base_delay=0.25)
        for attempt in range(5):
            client._retry_sleep(attempt)
        # Attempts 0 and 1 are free; then 0.25 * 2^(attempt-2).
        assert slept == [0.25, 0.5, 1.0]

    def test_jitter_is_drawn_from_the_full_interval(self, monkeypatch):
        drawn: list[tuple[float, float]] = []
        monkeypatch.setattr(client_mod.time, "sleep", lambda s: None)
        monkeypatch.setattr(
            client_mod.random, "uniform",
            lambda a, b: drawn.append((a, b)) or 0.0,
        )
        client = Client("127.0.0.1", 1, retry_base_delay=0.5)
        client._retry_sleep(3)
        assert drawn == [(0, 1.0)]


class TestIdempotencyClassification:
    def test_idem_token_marks_any_command(self):
        assert _is_idempotent({"cmd": "star", "idem": "t"})
        assert not _is_idempotent({"cmd": "star"})

    def test_pipeline_needs_every_mutation_stamped(self):
        stamped = {"cmd": "pipeline", "commands": [
            {"cmd": "wealth", "session_id": "s"},
            {"cmd": "star", "session_id": "s", "idem": "t1"},
        ]}
        unstamped = {"cmd": "pipeline", "commands": [
            {"cmd": "wealth", "session_id": "s"},
            {"cmd": "star", "session_id": "s"},
        ]}
        assert _is_idempotent(stamped)
        assert not _is_idempotent(unstamped)

    def test_empty_or_malformed_pipeline_is_not_idempotent(self):
        assert not _is_idempotent({"cmd": "pipeline", "commands": []})
        assert not _is_idempotent({"cmd": "pipeline", "commands": ["x"]})
