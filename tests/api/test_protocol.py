"""Wire protocol: command codec, version gating, envelopes, predicates."""

import json

import pytest

from repro.api.protocol import (
    COMMANDS,
    PROTOCOL_VERSION,
    CreateSession,
    ErrorInfo,
    ListDatasets,
    Response,
    Show,
    Star,
    command_from_dict,
    command_to_dict,
    error_code_for,
    predicate_from_dict,
    predicate_to_dict,
)
from repro.errors import (
    AdmissionRejectedError,
    InvalidParameterError,
    PredicateError,
    ProtocolError,
    ReproError,
    SchemaError,
    SessionError,
    WealthExhaustedError,
)
from repro.exploration.predicate import TRUE, And, Eq, In, Not, Or, Range


class TestCommandCodec:
    def test_every_command_round_trips(self):
        samples = {
            "create_session": CreateSession(dataset="census", alpha=0.01,
                                            procedure_kwargs={"gamma": 2.0}),
            "show": Show(session_id="s1", attribute="age",
                         where=Eq("sex", "Female"), bins=8),
            "star": Star(session_id="s1", hypothesis_id=3),
            "list_datasets": ListDatasets(),
        }
        for verb, command in samples.items():
            wire = command_to_dict(command)
            assert wire["cmd"] == verb
            assert wire["v"] == PROTOCOL_VERSION
            # through real JSON, like the HTTP layer does
            rebuilt = command_from_dict(json.loads(json.dumps(wire)))
            assert rebuilt == command

    def test_all_registered_verbs_have_distinct_wire_names(self):
        # 12 v1 verbs + the v2 pipeline envelope + the v2 recover verb
        assert len(COMMANDS) == 14
        assert all(cls.cmd == verb for verb, cls in COMMANDS.items())

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError, match="missing the protocol version"):
            command_from_dict({"cmd": "show", "session_id": "s", "attribute": "a"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError, match="unsupported protocol version"):
            command_from_dict({"v": PROTOCOL_VERSION + 1, "cmd": "list_datasets"})

    def test_unknown_verb_rejected(self):
        with pytest.raises(ProtocolError, match="unknown command"):
            command_from_dict({"v": 1, "cmd": "drop_table"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="no field"):
            command_from_dict({"v": 1, "cmd": "list_datasets", "hack": True})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="show"):
            command_from_dict({"v": 1, "cmd": "show"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            command_from_dict([1, 2, 3])

    @pytest.mark.parametrize("payload", [
        {"v": 1, "cmd": "show", "session_id": 7, "attribute": "age"},
        {"v": 1, "cmd": "show", "session_id": "s", "attribute": None},
        {"v": 1, "cmd": "star", "session_id": "s", "hypothesis_id": "three"},
        {"v": 1, "cmd": "create_session", "dataset": "census",
         "procedure_kwargs": [1, 2]},
        {"v": 1, "cmd": "create_session", "dataset": "census", "alpha": "low"},
        {"v": 1, "cmd": "show", "session_id": "s", "attribute": "age",
         "bins": "ten"},
    ])
    def test_type_malformed_fields_are_protocol_errors(self, payload):
        """Bad field types must be a client-side PROTOCOL error, never an
        INTERNAL surprise later in dispatch."""
        with pytest.raises(ProtocolError, match="field"):
            command_from_dict(payload)

    def test_nullable_fields_accept_null(self):
        cmd = command_from_dict({"v": 1, "cmd": "stats", "session_id": None})
        assert cmd.session_id is None

    @pytest.mark.parametrize("verb", [{"x": 1}, [1], 7, None, True])
    def test_non_string_cmd_is_protocol_error(self, verb):
        """Unhashable/odd 'cmd' values must envelope, not TypeError."""
        with pytest.raises(ProtocolError, match="cmd"):
            command_from_dict({"v": 1, "cmd": verb})

    def test_json_booleans_rejected_for_numeric_fields(self):
        """bool subclasses int in Python; a JSON true must not act as id 1."""
        with pytest.raises(ProtocolError, match="hypothesis_id"):
            command_from_dict({"v": 1, "cmd": "star", "session_id": "s",
                               "hypothesis_id": True})
        with pytest.raises(ProtocolError, match="alpha"):
            command_from_dict({"v": 1, "cmd": "create_session",
                               "dataset": "census", "alpha": True})


class TestPredicateCodec:
    def test_all_node_types_round_trip(self, census):
        pred = And((
            Eq("sex", "Female"),
            Or((Range("age", 18, 30), Not(In("education", ("HS", "PhD"))))),
        ))
        rebuilt = predicate_from_dict(json.loads(json.dumps(predicate_to_dict(pred))))
        assert rebuilt.normalize() == pred.normalize()
        import numpy as np

        assert np.array_equal(pred.mask(census), rebuilt.mask(census))

    def test_true_round_trips(self):
        assert predicate_from_dict(predicate_to_dict(TRUE)) is TRUE

    def test_infinite_range_bounds_survive_strict_json(self):
        pred = Range("age", float("-inf"), 30.0)
        wire = json.dumps(predicate_to_dict(pred))
        assert "Infinity" not in wire  # strict JSON, no non-standard tokens
        assert predicate_from_dict(json.loads(wire)) == pred

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown predicate op"):
            predicate_from_dict({"op": "xor", "operands": []})

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing field"):
            predicate_from_dict({"op": "eq", "column": "age"})


class TestEnvelopes:
    def test_success_envelope_shape(self):
        resp = Response.success({"x": 1})
        wire = resp.to_dict()
        assert wire == {"v": PROTOCOL_VERSION, "ok": True, "result": {"x": 1}}
        assert Response.from_dict(wire) == resp

    def test_failure_envelope_shape(self):
        resp = Response.failure("SESSION", "no session", {"sid": "s9"})
        wire = resp.to_dict()
        assert wire["ok"] is False
        assert wire["error"] == {"code": "SESSION", "message": "no session",
                                 "details": {"sid": "s9"}}
        assert Response.from_dict(wire).error == ErrorInfo(
            "SESSION", "no session", {"sid": "s9"}
        )

    @pytest.mark.parametrize("exc,code", [
        (AdmissionRejectedError("cap"), "ADMISSION_REJECTED"),
        (WealthExhaustedError("broke"), "WEALTH_EXHAUSTED"),
        (ProtocolError("bad"), "PROTOCOL"),
        (SessionError("gone"), "SESSION"),
        (SchemaError("col"), "SCHEMA"),
        (PredicateError("pred"), "PREDICATE"),
        (InvalidParameterError("bad alpha"), "INVALID_PARAMETER"),
        (ReproError("generic"), "REPRO_ERROR"),
        (RuntimeError("oops"), "INTERNAL"),
    ])
    def test_error_code_mapping_is_stable(self, exc, code):
        assert error_code_for(exc) == code

    def test_internal_errors_hide_their_message(self):
        resp = Response.from_exception(RuntimeError("secret /path/to/data"))
        assert resp.error is not None
        assert "secret" not in resp.error.message
        assert resp.error.code == "INTERNAL"

    def test_details_carrying_errors_keep_clean_messages(self):
        exc = WealthExhaustedError("out of wealth", {"wealth": 0.0})
        resp = Response.from_exception(exc, details={"wealth": 0.0})
        assert resp.error.message == "out of wealth"
        assert resp.error.details == {"wealth": 0.0}
