"""Protocol v2 pipelines: envelope codec, execution order, error slots,
``"$prev"`` substitution, failure policies, and idempotent replay."""

import json

import pytest

from repro.api import ApiError, Client, ExplorationService, ServerThread
from repro.api.protocol import (
    MAX_PIPELINE_COMMANDS,
    PREV,
    Pipeline,
    Show,
    Star,
    command_from_dict,
    command_to_dict,
)
from repro.errors import ProtocolError
from repro.exploration.predicate import Eq, Not
from repro.service import SessionManager


@pytest.fixture()
def service(census):
    svc = ExplorationService(max_sessions=8)
    svc.register_dataset(census, name="census")
    return svc


def _session(service, **kwargs):
    resp = service.handle_dict(
        {"v": 2, "cmd": "create_session", "dataset": "census", **kwargs}
    )
    assert resp["ok"], resp
    return resp["result"]["session_id"]


def _pipe(sid, *commands, policy="abort_on_error"):
    return {"v": 2, "cmd": "pipeline", "failure_policy": policy,
            "commands": list(commands)}


def _show(sid, attribute, where=None, **kw):
    cmd = {"cmd": "show", "session_id": sid, "attribute": attribute, **kw}
    if where is not None:
        cmd["where"] = where
    return cmd


class TestEnvelopeCodec:
    def test_pipeline_round_trips_through_json(self):
        pipe = Pipeline(commands=(
            Show(session_id="s1", attribute="age", where=Eq("sex", "Female")),
            Star(session_id="s1", hypothesis_id=PREV, idem="tok-1"),
            Show(session_id="s1", attribute="salary_over_50k"),
        ), failure_policy="continue")
        wire = command_to_dict(pipe)
        assert wire["cmd"] == "pipeline"
        assert all("v" not in inner for inner in wire["commands"])
        rebuilt = command_from_dict(json.loads(json.dumps(wire)))
        assert rebuilt == pipe

    def test_pipeline_requires_v2(self):
        with pytest.raises(ProtocolError, match="requires protocol v2"):
            command_from_dict({"v": 1, "cmd": "pipeline", "commands": [
                {"cmd": "list_datasets"}]})

    def test_nested_pipelines_rejected(self):
        with pytest.raises(ProtocolError, match="nested"):
            command_from_dict({"v": 2, "cmd": "pipeline", "commands": [
                {"cmd": "pipeline", "commands": []}]})

    def test_empty_and_oversized_pipelines_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            command_from_dict({"v": 2, "cmd": "pipeline", "commands": []})
        too_many = [{"cmd": "list_datasets"}] * (MAX_PIPELINE_COMMANDS + 1)
        with pytest.raises(ProtocolError, match="limit"):
            command_from_dict({"v": 2, "cmd": "pipeline", "commands": too_many})

    def test_unknown_failure_policy_rejected(self):
        with pytest.raises(ProtocolError, match="failure_policy"):
            command_from_dict({"v": 2, "cmd": "pipeline",
                               "failure_policy": "explode",
                               "commands": [{"cmd": "list_datasets"}]})

    def test_inner_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="declares v1"):
            command_from_dict({"v": 2, "cmd": "pipeline", "commands": [
                {"v": 1, "cmd": "list_datasets"}]})

    def test_idem_rejected_on_v1_requests(self):
        with pytest.raises(ProtocolError, match="idem"):
            command_from_dict({"v": 1, "cmd": "star", "session_id": "s",
                               "hypothesis_id": 1, "idem": "tok"})

    def test_prev_rejected_on_v1_requests(self):
        with pytest.raises(ProtocolError, match="hypothesis_id"):
            command_from_dict({"v": 1, "cmd": "star", "session_id": "s",
                               "hypothesis_id": PREV})


class TestExecution:
    def test_show_star_show_single_round_trip(self, service):
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV},
            _show(sid, "age", {"op": "not", "operand":
                  {"op": "eq", "column": "sex", "value": "Female"}}),
        ))
        assert env["ok"], env
        result = env["result"]
        assert result["executed"] == 3
        assert [s["ok"] for s in result["slots"]] == [True, True, True]
        starred = result["slots"][1]["result"]["hypothesis"]
        assert starred["id"] == 1 and starred["starred"] is True

    def test_decision_log_byte_identical_to_serial(self, service, census):
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV},
            _show(sid, "age", {"op": "not", "operand":
                  {"op": "eq", "column": "sex", "value": "Female"}}),
            {"cmd": "override", "session_id": sid, "hypothesis_id": PREV},
        ))
        assert env["ok"] and all(s["ok"] for s in env["result"]["slots"])

        manager = SessionManager()
        manager.register_dataset(census, name="census")
        serial = manager.create_session("census")
        manager.show(serial, "age", where=Eq("sex", "Female"))
        manager.star(serial, 1)
        manager.show(serial, "age", where=Not(Eq("sex", "Female")))
        manager.override_with_means(serial, 2)
        assert (service.manager.decision_log_bytes(sid)
                == manager.decision_log_bytes(serial))

    def test_prev_resolves_through_revisions(self, service):
        """override's revised_id feeds the next $prev reference."""
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            _show(sid, "age", {"op": "not", "operand":
                  {"op": "eq", "column": "sex", "value": "Female"}}),
            {"cmd": "override", "session_id": sid, "hypothesis_id": PREV},
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV},
        ))
        result = env["result"]
        assert [s["ok"] for s in result["slots"]] == [True] * 4
        assert result["slots"][2]["result"]["revised_id"] == 2
        assert result["slots"][3]["result"]["hypothesis"]["id"] == 2

    def test_prev_before_any_hypothesis_is_protocol_error(self, service):
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV},
            {"cmd": "wealth", "session_id": sid},
        ))
        slots = env["result"]["slots"]
        assert slots[0]["error"]["code"] == "PROTOCOL"
        assert slots[1]["error"]["code"] == "NOT_EXECUTED"

    def test_prev_outside_pipeline_is_protocol_error(self, service):
        sid = _session(service)
        env = service.handle_dict({"v": 2, "cmd": "star", "session_id": sid,
                                   "hypothesis_id": PREV})
        assert env["error"]["code"] == "PROTOCOL"

    def test_descriptive_show_does_not_update_prev(self, service):
        """A descriptive panel tracks no hypothesis: $prev still points at
        the last hypothesis-producing command."""
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            _show(sid, "education", descriptive=True),
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV},
        ))
        slots = env["result"]["slots"]
        assert [s["ok"] for s in slots] == [True] * 3
        assert slots[1]["result"]["hypothesis"] is None
        assert slots[2]["result"]["hypothesis"]["id"] == 1

    def test_multi_session_pipeline_fills_every_slot(self, service):
        a, b = _session(service), _session(service)
        env = service.handle_dict(_pipe(
            a,
            _show(a, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            _show(b, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            {"cmd": "wealth", "session_id": a},
            {"cmd": "wealth", "session_id": b},
        ))
        slots = env["result"]["slots"]
        assert [s["ok"] for s in slots] == [True] * 4
        # isolated ledgers: both sessions spent the same wealth separately
        assert (slots[2]["result"]["wealth"]
                == slots[3]["result"]["wealth"])


class TestPipelineObservability:
    def test_stats_count_pipelines_and_commands(self, service):
        sid = _session(service)
        stats = service.handle_dict({"v": 2, "cmd": "stats"})["result"]
        assert stats["pipelines"] == 0
        assert stats["pipeline_commands"] == 0
        resp = service.handle_dict(_pipe(
            sid,
            _show(sid, "education",
                  {"op": "eq", "column": "sex", "value": "Female"}),
            {"cmd": "star", "session_id": sid, "hypothesis_id": "$prev"},
            _show(sid, "age",
                  {"op": "eq", "column": "sex", "value": "Female"}),
        ))
        assert resp["ok"], resp
        stats = service.handle_dict({"v": 2, "cmd": "stats"})["result"]
        assert stats["pipelines"] == 1
        assert stats["pipeline_commands"] == 3


class TestErrorEnvelopesInsidePipelines:
    def test_unknown_verb_rejects_whole_envelope_before_execution(self, service):
        """Strict parsing: a malformed slot means *nothing* runs — partial
        execution of an envelope the client mis-built would be worse than
        a loud rejection."""
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "age", {"op": "eq", "column": "sex", "value": "Female"}),
            {"cmd": "drop_table", "session_id": sid},
        ))
        assert not env["ok"]
        assert env["error"]["code"] == "PROTOCOL"
        assert "drop_table" in env["error"]["message"]
        assert service.manager.decision_log(sid) == ()  # nothing executed

    def test_inner_version_mismatch_rejects_whole_envelope(self, service):
        sid = _session(service)
        env = service.handle_dict(_pipe(
            sid,
            {"v": 1, "cmd": "wealth", "session_id": sid},
        ))
        assert not env["ok"] and env["error"]["code"] == "PROTOCOL"

    @pytest.fixture()
    def exhausted_sid(self, service):
        """A session driven to wealth exhaustion (gamma=3 affords ~3 misses)."""
        sid = _session(service, procedure="gamma-fixed",
                       procedure_kwargs={"gamma": 3.0})
        dead_ends = [("sex", "workclass", "Private"),
                     ("sex", "race", "GroupB"),
                     ("education", "native_region", "North"),
                     ("sex", "workclass", "Government")]
        for target, attr, cat in dead_ends:
            service.handle_dict({"v": 2, "cmd": "show", "session_id": sid,
                                 "attribute": target,
                                 "where": {"op": "eq", "column": attr,
                                           "value": cat}})
            if service.manager.session(sid).is_exhausted:
                break
        assert service.manager.session(sid).is_exhausted
        return sid

    def test_wealth_exhausted_mid_pipeline_abort(self, service, exhausted_sid):
        sid = exhausted_sid
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "education", descriptive=True),   # still served
            _show(sid, "salary_over_50k",
                  {"op": "eq", "column": "education", "value": "PhD"}),
            {"cmd": "wealth", "session_id": sid},        # skipped
            _show(sid, "age", descriptive=True),         # skipped
        ))
        slots = env["result"]["slots"]
        assert slots[0]["ok"]
        assert slots[1]["error"]["code"] == "WEALTH_EXHAUSTED"
        assert slots[1]["error"]["details"]["exhausted"] is True
        assert [s["error"]["code"] for s in slots[2:]] == ["NOT_EXECUTED"] * 2
        assert all(s["error"]["details"]["aborted_by"] == 1 for s in slots[2:])
        assert env["result"]["executed"] == 2

    def test_wealth_exhausted_mid_pipeline_continue(self, service,
                                                    exhausted_sid):
        sid = exhausted_sid
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "salary_over_50k",
                  {"op": "eq", "column": "education", "value": "PhD"}),
            {"cmd": "wealth", "session_id": sid},
            _show(sid, "age", descriptive=True),
            policy="continue",
        ))
        slots = env["result"]["slots"]
        assert slots[0]["error"]["code"] == "WEALTH_EXHAUSTED"
        assert slots[1]["ok"] and slots[2]["ok"]   # continue: all executed
        assert env["result"]["executed"] == 3

    def test_continue_policy_matches_serial_log(self, service, census,
                                                exhausted_sid):
        """Failure policies change which slots run, never what a decision
        looks like: the continue-run log equals the serial equivalent."""
        sid = exhausted_sid
        before = service.manager.decision_log_bytes(sid)
        env = service.handle_dict(_pipe(
            sid,
            _show(sid, "salary_over_50k",
                  {"op": "eq", "column": "education", "value": "PhD"}),
            _show(sid, "education", descriptive=True),
            policy="continue",
        ))
        assert not env["result"]["slots"][0]["ok"]
        # the rejected show and the descriptive one added no decisions
        assert service.manager.decision_log_bytes(sid) == before


class TestIdempotency:
    def test_idem_replays_cached_response(self, service):
        sid = _session(service)
        cmd = {"v": 2, "cmd": "show", "session_id": sid, "attribute": "age",
               "where": {"op": "eq", "column": "sex", "value": "Female"},
               "idem": "gesture-1"}
        first = service.handle_dict(cmd)
        assert first["ok"]
        log_after_first = service.manager.decision_log_bytes(sid)
        replay = service.handle_dict(cmd)
        assert replay == first
        # no double spend: the log did not grow
        assert service.manager.decision_log_bytes(sid) == log_after_first

    def test_failed_responses_are_not_recorded(self, service):
        sid = _session(service)
        cmd = {"v": 2, "cmd": "show", "session_id": sid,
               "attribute": "no_such_column", "idem": "gesture-2"}
        assert service.handle_dict(cmd)["error"]["code"] == "SCHEMA"
        fixed = dict(cmd, attribute="age")
        assert service.handle_dict(fixed)["ok"]  # same token, re-executed

    def test_pipeline_inner_idem_replays_per_slot(self, service):
        sid = _session(service)
        pipe = _pipe(
            sid,
            dict(_show(sid, "age",
                       {"op": "eq", "column": "sex", "value": "Female"}),
                 idem="p1-show"),
            {"cmd": "star", "session_id": sid, "hypothesis_id": PREV,
             "idem": "p1-star"},
        )
        first = service.handle_dict(pipe)
        assert first["ok"]
        log_after = service.manager.decision_log_bytes(sid)
        replay = service.handle_dict(pipe)
        assert replay["result"]["slots"] == first["result"]["slots"]
        assert service.manager.decision_log_bytes(sid) == log_after

    def test_idem_cache_is_bounded(self, census):
        svc = ExplorationService(idem_cache_size=2)
        svc.register_dataset(census, name="census")
        sid = _session(svc)
        for token in ("a", "b", "c"):
            svc.handle_dict({"v": 2, "cmd": "wealth", "session_id": sid,
                             "idem": token})
        assert list(svc._idem_cache) == ["b", "c"]  # "a" evicted (LRU)


class TestClientBuilder:
    @pytest.fixture()
    def http_client(self, census):
        svc = ExplorationService(max_sessions=8)
        svc.register_dataset(census, name="census")
        with ServerThread(svc) as server, Client(port=server.port) as client:
            yield client

    def test_builder_chain_over_http(self, http_client):
        sid = http_client.create_session("census")
        result = (http_client.pipeline(sid)
                  .show("age", where=Eq("sex", "Female"))
                  .star()
                  .show("age", where=Not(Eq("sex", "Female")))
                  .execute(raise_on_error=True))
        assert len(result) == 3 and result.ok
        assert result[1]["hypothesis"]["starred"] is True
        assert result.results()[2]["hypothesis"]["kind"] == "rule3-two-sample"

    def test_builder_error_accessors(self, http_client):
        sid = http_client.create_session("census")
        result = (http_client.pipeline(sid)
                  .show("no_such_column")
                  .wealth()
                  .execute())
        assert not result.ok
        assert result.error(0).code == "SCHEMA"
        assert result.error(1).code == "NOT_EXECUTED"
        with pytest.raises(ApiError, match="SCHEMA"):
            result.raise_for_error()

    def test_builder_stamps_idem_tokens(self, http_client):
        pipe = (http_client.pipeline("s")
                .show("age")
                .wealth()
                .build())
        assert pipe.commands[0].idem is not None   # mutating: stamped
        assert pipe.commands[1].idem is None       # read-only: no token
        # a no-auto-idem client leaves commands unstamped
        quiet = Client(port=http_client.port, auto_idem=False)
        pipe = quiet.pipeline("s").show("age").build()
        assert pipe.commands[0].idem is None
