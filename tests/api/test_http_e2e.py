"""HTTP front end: full lifecycle over a live localhost server.

Boots the asyncio server on an ephemeral port (daemon thread) and drives
it with the blocking :class:`repro.api.Client` — the same pairing the
CI smoke job exercises through a real ``repro serve`` subprocess.
"""

import json
import threading

import pytest

from repro.api import ApiError, Client, ExplorationService, ServerThread
from repro.exploration.predicate import Eq, Not
from repro.service import SessionManager

#: The scripted panels every equivalence check replays.
PANELS = [("education", Eq("sex", "Female")),
          ("age", Eq("sex", "Female")),
          ("age", Not(Eq("sex", "Female"))),
          ("occupation", Eq("education", "PhD"))]


@pytest.fixture(scope="module")
def census_small():
    from repro.workloads.census import make_census

    return make_census(4_000, seed=0)


@pytest.fixture()
def server(census_small):
    service = ExplorationService(max_sessions=8)
    service.register_dataset(census_small, name="census")
    with ServerThread(service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with Client(port=server.port) as c:
        yield c


class TestHttpLifecycle:
    def test_health_endpoint(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["result"]["status"] == "healthy"
        assert "census" in health["result"]["datasets"]

    def test_healthz_reports_occupancy_and_evictions(self, client):
        a = client.create_session("census")
        b = client.create_session("census")
        result = client.health()["result"]
        assert result["sessions"] == 2
        assert result["max_sessions"] == 8
        assert result["occupancy"] == pytest.approx(0.25)
        assert result["datasets"] == {"census": 2}  # per-dataset counts
        assert result["evictions"] == {"idle": 0, "capacity": 0}
        assert result["tombstones"] == 0
        client.close_session(a)
        client.close_session(b)
        assert client.health()["result"]["sessions"] == 0

    def test_full_lifecycle_over_http(self, client):
        assert [d["name"] for d in client.list_datasets()] == ["census"]
        sid = client.create_session("census")
        for attribute, where in PANELS:
            view = client.show(sid, attribute, where=where)
            assert view["histogram"]["support"] > 0
        starred = client.star(sid, 1)
        assert starred["starred"] is True
        report = client.override_with_means(sid, 3)
        assert report["revised_id"] == 3
        report = client.delete_hypothesis(sid, 4)
        assert report["revised_id"] == 4
        gauge = client.wealth(sid)
        assert gauge["num_tested"] >= 2
        exported = client.export(sid)
        assert exported["schema_version"] == 1
        assert any(h["kind"] == "override" for h in exported["hypotheses"])
        client.close_session(sid)
        with pytest.raises(ApiError) as exc_info:
            client.wealth(sid)
        assert exc_info.value.code == "SESSION"
        assert exc_info.value.status == 404

    def test_http_log_byte_identical_to_inprocess(self, client, census_small):
        sid = client.create_session("census")
        for attribute, where in PANELS:
            client.show(sid, attribute, where=where)
        client.star(sid, 1)
        client.override_with_means(sid, 3)
        client.delete_hypothesis(sid, 4)
        http_log = client.decision_log_bytes(sid)

        manager = SessionManager()
        manager.register_dataset(census_small, name="census")
        local = manager.create_session("census")
        for attribute, where in PANELS:
            manager.show(local, attribute, where=where)
        manager.star(local, 1)
        manager.override_with_means(local, 3)
        manager.delete_hypothesis(local, 4)
        assert http_log == manager.decision_log_bytes(local)

    def test_error_envelopes_cross_the_wire(self, client):
        with pytest.raises(ApiError) as exc_info:
            client.show("ghost", "age")
        assert exc_info.value.code == "SESSION"
        with pytest.raises(ApiError) as exc_info:
            client.call({"v": 999, "cmd": "list_datasets"})
        assert exc_info.value.code == "PROTOCOL"
        assert exc_info.value.status == 400

    def test_admission_rejection_maps_to_429(self, census_small):
        service = ExplorationService(max_sessions=1)
        service.register_dataset(census_small, name="census")
        with ServerThread(service) as srv, Client(port=srv.port) as client:
            client.create_session("census")
            with pytest.raises(ApiError) as exc_info:
                client.create_session("census")
            assert exc_info.value.code == "ADMISSION_REJECTED"
            assert exc_info.value.status == 429
            assert exc_info.value.details["max_sessions"] == 1

    def test_concurrent_clients_are_isolated(self, server):
        """N threads, one session each: wealth trajectories independent."""
        results: dict[int, bytes] = {}
        errors: list[Exception] = []

        def explore(idx: int) -> None:
            try:
                with Client(port=server.port) as c:
                    sid = c.create_session("census", session_id=f"iso-{idx}")
                    for attribute, where in PANELS[:2]:
                        c.show(sid, attribute, where=where)
                    results[idx] = c.decision_log_bytes(sid)
                    c.close_session(sid)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=explore, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # same panels, isolated sessions -> identical logs for everyone
        assert len(set(results.values())) == 1


class TestHttpFraming:
    def test_unknown_route_is_protocol_envelope(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", "/nope")
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 404
            assert payload["error"]["code"] == "PROTOCOL"
        finally:
            conn.close()

    def test_invalid_json_body_is_protocol_envelope(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("POST", "/v1/command", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert payload["error"]["code"] == "PROTOCOL"
        finally:
            conn.close()

    def test_get_on_command_route_is_405(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", "/v1/command")
            resp = conn.getresponse()
            assert resp.status == 405
            json.loads(resp.read())
        finally:
            conn.close()

    def test_connection_close_is_honoured_on_healthz(self, server):
        """Regression: a keep-alive-capable connection asking for
        ``Connection: close`` must get a full response *and* a closed
        connection — not a hang, not a silently kept-alive socket.  Raw
        socket on purpose: ``http.client`` reconnects transparently and
        would mask a server that ignored the header."""
        import socket

        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                         b"Connection: close\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:  # EOF: the server really closed
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"Connection: close" in head
        assert json.loads(body)["result"]["status"] == "healthy"

    def test_health_retries_a_stale_pooled_connection(self, client):
        """Regression: ``Client.health()`` must reconnect when its pooled
        keep-alive connection has died — a liveness probe reports on the
        server, not on this client's socket."""
        assert client.health()["ok"] is True
        assert client._conn is not None
        client._conn.sock.close()  # simulate the server dropping keep-alive
        assert client.health()["ok"] is True
