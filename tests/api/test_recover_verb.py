"""The v2 ``recover`` verb and the client-side recovery retry policy.

Covers the redesigned session-lifecycle API end to end: protocol
parsing (v2-only), service dispatch against a store-backed manager,
eviction envelopes advertising ``recoverable``, durable idempotency
replay across a simulated crash, and the :class:`Client`'s
``with_recovery()`` transparent retry (plus the deprecation of the raw
export-payload resurrection path it supersedes).
"""

from __future__ import annotations

import warnings

import pytest

from repro.api.client import ApiError, Client
from repro.api.http import ServerThread
from repro.api.protocol import (
    ProtocolError,
    RecoverSession,
    Response,
    command_from_dict,
    command_to_dict,
)
from repro.api.service import ExplorationService
from repro.exploration.predicate import Eq
from repro.service import SessionManager
from repro.store import MemorySessionStore

WHERE = {"op": "eq", "column": "workclass", "value": "Government"}


@pytest.fixture()
def store():
    return MemorySessionStore()


@pytest.fixture()
def service(census, store):
    manager = SessionManager(store=store, snapshot_every=3)
    svc = ExplorationService(manager=manager, max_sessions=4)
    svc.register_dataset(census, name="census")
    return svc


def _create(service, **kwargs):
    env = service.handle_dict(
        {"v": 2, "cmd": "create_session", "dataset": "census", **kwargs}
    )
    assert env["ok"], env
    return env["result"]["session_id"]


def _show(service, sid, attribute="education", **kwargs):
    env = service.handle_dict({"v": 2, "cmd": "show", "session_id": sid,
                               "attribute": attribute, "where": WHERE,
                               **kwargs})
    assert env["ok"], env
    return env


class TestProtocol:
    def test_roundtrip(self):
        cmd = RecoverSession(session_id="s0001", v=2)
        parsed = command_from_dict(command_to_dict(cmd))
        assert parsed == cmd
        assert parsed.cmd == "recover"

    def test_v1_is_rejected(self):
        with pytest.raises(ProtocolError, match="protocol v2"):
            command_from_dict({"v": 1, "cmd": "recover",
                               "session_id": "s0001"})

    def test_recover_is_idempotent_capable(self):
        """The verb carries an idem token (it is not read-only), so the
        client's auto-stamping makes blind retries safe."""
        cmd = RecoverSession(session_id="s0001", idem="tok")
        assert command_to_dict(cmd)["idem"] == "tok"


class TestServiceRecover:
    def test_recover_after_eviction_restores_state(self, service):
        sid = _create(service)
        shown = _show(service, sid)
        log = service.handle_dict({"v": 2, "cmd": "decision_log",
                                   "session_id": sid})["result"]
        service.manager._evict_session(sid, reason="idle")
        env = service.handle_dict({"v": 2, "cmd": "recover",
                                   "session_id": sid})
        assert env["ok"], env
        assert env["result"]["recovered"] is True
        assert env["result"]["session_id"] == sid
        assert env["result"]["replayed"] == 1
        after = service.handle_dict({"v": 2, "cmd": "decision_log",
                                     "session_id": sid})["result"]
        assert after == log
        assert shown["result"]["hypothesis"] is not None

    def test_recover_live_session_is_noop(self, service):
        sid = _create(service)
        _show(service, sid)
        env = service.handle_dict({"v": 2, "cmd": "recover",
                                   "session_id": sid})
        assert env["ok"]
        assert env["result"]["recovered"] is False

    def test_recover_without_store_errors(self, census):
        svc = ExplorationService(max_sessions=4)
        svc.register_dataset(census, name="census")
        env = svc.handle_dict({"v": 2, "cmd": "recover",
                               "session_id": "s0000"})
        assert env["error"]["code"] == "STORE"
        assert "--store" in env["error"]["message"]

    def test_recover_unknown_session_errors(self, service):
        env = service.handle_dict({"v": 2, "cmd": "recover",
                                   "session_id": "nope"})
        assert env["error"]["code"] == "SESSION"

    def test_eviction_envelope_advertises_recoverable(self, service):
        sid = _create(service)
        _show(service, sid)
        service.manager._evict_session(sid, reason="idle")
        env = service.handle_dict({"v": 2, "cmd": "wealth",
                                   "session_id": sid})
        assert env["error"]["code"] == "SESSION_EVICTED"
        assert env["error"]["details"]["recoverable"] is True

    def test_recover_respects_capacity(self, census, store):
        manager = SessionManager(store=store)
        svc = ExplorationService(manager=manager, max_sessions=1)
        svc.register_dataset(census, name="census")
        sid = _create(svc)
        svc.manager._evict_session(sid, reason="capacity")
        _create(svc)  # the only slot is taken again
        env = svc.handle_dict({"v": 2, "cmd": "recover", "session_id": sid})
        assert env["error"]["code"] == "ADMISSION_REJECTED"

    def test_stats_reports_store_kind(self, service):
        env = service.handle_dict({"v": 2, "cmd": "stats"})
        assert env["result"]["store"] == "memory"

    def test_stats_reports_no_store(self, census):
        svc = ExplorationService(max_sessions=4)
        svc.register_dataset(census, name="census")
        env = svc.handle_dict({"v": 2, "cmd": "stats"})
        assert env["result"]["store"] is None


class TestDurableIdempotency:
    """The satellite bugfix: retried tokens survive a crash."""

    def _crashed_clone(self, census, store):
        manager = SessionManager(store=store)
        svc = ExplorationService(manager=manager, max_sessions=4)
        svc.register_dataset(census, name="census")
        svc.manager.recover_all()
        return svc

    def test_mutating_retry_after_crash_replays_response(
            self, census, store, service):
        sid = _create(service)
        env = _show(service, sid, idem="show-1")
        crashed = self._crashed_clone(census, store)
        replay = crashed.handle_dict({"v": 2, "cmd": "show",
                                      "session_id": sid,
                                      "attribute": "education",
                                      "where": WHERE, "idem": "show-1"})
        assert replay == env  # byte-for-byte the original envelope
        # and no duplicate decision was appended
        crashed_log = crashed.handle_dict({"v": 2, "cmd": "decision_log",
                                           "session_id": sid})["result"]
        live_log = service.handle_dict({"v": 2, "cmd": "decision_log",
                                        "session_id": sid})["result"]
        assert crashed_log == live_log

    def test_create_retry_after_crash_returns_same_session(
            self, census, store, service):
        env = service.handle_dict({"v": 2, "cmd": "create_session",
                                   "dataset": "census", "idem": "create-1"})
        sid = env["result"]["session_id"]
        crashed = self._crashed_clone(census, store)
        replay = crashed.handle_dict({"v": 2, "cmd": "create_session",
                                      "dataset": "census",
                                      "idem": "create-1"})
        assert replay["ok"]
        assert replay["result"]["session_id"] == sid
        # only one session exists under that id
        assert crashed.manager.session_ids().count(sid) == 1

    def test_failed_command_is_not_made_durable(self, service, store):
        sid = _create(service)
        env = service.handle_dict({"v": 2, "cmd": "show", "session_id": sid,
                                   "attribute": "no_such_column",
                                   "where": WHERE, "idem": "bad-1"})
        assert not env["ok"]
        assert store.get_idem("bad-1") is None
        assert store.load(sid).wal_seq == 0


class TestClientRecovery:
    @pytest.fixture()
    def server(self, service):
        with ServerThread(service) as srv:
            yield srv

    def test_with_recovery_transparently_replays(self, server, service):
        with Client(port=server.port).with_recovery() as client:
            sid = client.create_session("census")
            client.call({"v": 2, "cmd": "show", "session_id": sid,
                         "attribute": "education", "where": WHERE})
            before = client.call({"v": 2, "cmd": "decision_log",
                                  "session_id": sid})
            service.manager._evict_session(sid, reason="idle")
            after = client.call({"v": 2, "cmd": "decision_log",
                                 "session_id": sid})
            assert after == before

    def test_recover_method(self, server, service):
        with Client(port=server.port) as client:
            sid = client.create_session("census")
            client.call({"v": 2, "cmd": "show", "session_id": sid,
                         "attribute": "education", "where": WHERE})
            service.manager._evict_session(sid, reason="idle")
            result = client.recover(sid)
            assert result["recovered"] is True
            assert result["session_id"] == sid

    def test_without_recovery_warns_and_raises(self, server, service):
        with Client(port=server.port) as client:
            sid = client.create_session("census")
            service.manager._evict_session(sid, reason="idle")
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with pytest.raises(ApiError) as exc_info:
                    client.call({"v": 2, "cmd": "wealth",
                                 "session_id": sid})
            assert exc_info.value.code == "SESSION_EVICTED"
            assert any(issubclass(w.category, DeprecationWarning)
                       for w in caught)

    def test_non_idempotent_mutation_is_not_replayed(self, server, service):
        with Client(port=server.port, auto_idem=False).with_recovery() \
                as client:
            sid = client.create_session("census")
            env = client.call({"v": 2, "cmd": "show", "session_id": sid,
                               "attribute": "education", "where": WHERE})
            hyp = env["hypothesis"]["id"]
            service.manager._evict_session(sid, reason="idle")
            with pytest.raises(ApiError) as exc_info:
                client.call({"v": 2, "cmd": "star", "session_id": sid,
                             "hypothesis_id": hyp})
            assert exc_info.value.code == "SESSION_EVICTED"

    def test_recover_error_shape_over_http(self, server):
        """An unknown session's recover travels as a SESSION error."""
        with Client(port=server.port) as client:
            with pytest.raises(ApiError) as exc_info:
                client.recover("nope")
            assert exc_info.value.code == "SESSION"


class TestRecoveredContinuation:
    def test_show_after_recovery_continues_the_stream(self, service):
        """Post-recovery hypothesis ids continue where the crash cut."""
        sid = _create(service)
        first = _show(service, sid)["result"]["hypothesis"]["id"]
        service.manager._evict_session(sid, reason="idle")
        service.handle_dict({"v": 2, "cmd": "recover", "session_id": sid})
        second = _show(service, sid, attribute="age")["result"][
            "hypothesis"]["id"]
        assert second == first + 1

    def test_envelope_for_response_parse(self, service):
        sid = _create(service)
        env = service.handle_dict({"v": 2, "cmd": "recover",
                                   "session_id": sid})
        response = Response.from_dict(env)
        assert response.ok
        assert response.result["recovered"] is False
