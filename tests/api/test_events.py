"""Server-push event channel: EventBroker semantics and the SSE route."""

import queue
import threading

import pytest

from repro.api import ApiError, Client, ExplorationService, ServerThread
from repro.exploration.predicate import Eq, Not
from repro.service import SessionManager
from repro.service.events import EventBroker


class TestEventBroker:
    def test_publish_reaches_every_subscriber_in_order(self):
        broker = EventBroker()
        subs = [broker.subscribe("s1") for _ in range(3)]
        for i in range(5):
            broker.publish("s1", {"type": "gauge", "seq": i})
        for sub in subs:
            assert [sub.get(timeout=1)["seq"] for _ in range(5)] == list(range(5))

    def test_publish_without_subscribers_is_a_noop(self):
        broker = EventBroker()
        assert broker.publish("ghost", {"type": "gauge"}) == 0
        assert broker.published == 0

    def test_sessions_are_isolated(self):
        broker = EventBroker()
        a, b = broker.subscribe("a"), broker.subscribe("b")
        broker.publish("a", {"type": "gauge", "who": "a"})
        assert a.get(timeout=1)["who"] == "a"
        with pytest.raises(queue.Empty):
            b.get(timeout=0.05)

    def test_bounded_queue_drops_newest_and_counts(self):
        broker = EventBroker()
        sub = broker.subscribe("s1", maxsize=2)
        for i in range(5):
            broker.publish("s1", {"seq": i})
        assert sub.dropped == 3
        assert [sub.get(timeout=1)["seq"], sub.get(timeout=1)["seq"]] == [0, 1]

    def test_close_session_terminates_iteration(self):
        broker = EventBroker()
        sub = broker.subscribe("s1")
        broker.publish("s1", {"type": "gauge"})
        broker.close_session("s1", reason="closed")
        events = list(sub)
        assert [e.get("type") for e in events] == ["gauge", "end"]
        assert events[-1]["reason"] == "closed"
        assert broker.subscriber_count() == 0

    def test_detach_stops_delivery(self):
        broker = EventBroker()
        sub = broker.subscribe("s1")
        sub.close()
        assert broker.publish("s1", {"type": "gauge"}) == 0

    def test_close_unblocks_a_parked_iterator(self):
        """Regression: close() must enqueue the terminal sentinel itself.
        A consumer thread blocked in ``__iter__`` (bare ``Queue.get()``,
        no timeout) would otherwise hang forever once its subscription
        is closed from another thread."""
        import threading
        import time

        broker = EventBroker()
        sub = broker.subscribe("s1")
        events = []

        def consume():
            events.extend(sub)  # parks in queue.get() immediately

        thread = threading.Thread(target=consume)
        thread.start()
        # prove the consumer reached its blocking get(): publish a probe
        # and wait until it has been drained from the queue
        broker.publish("s1", {"type": "gauge"})
        deadline = time.monotonic() + 5.0
        while (not events or sub.pending()) and time.monotonic() < deadline:
            time.sleep(0.001)
        assert events and events[0]["type"] == "gauge"
        sub.close()
        thread.join(timeout=5)
        assert not thread.is_alive(), "consumer never unblocked after close()"
        assert events[-1]["type"] == "end"
        assert events[-1]["reason"] == "unsubscribed"

    def test_close_is_idempotent_and_sends_one_sentinel(self):
        broker = EventBroker()
        sub = broker.subscribe("s1")
        sub.close()
        sub.close()
        assert sub.pending() == 1  # exactly one terminal event queued

    def test_broker_close_then_subscriber_close_no_double_end(self):
        broker = EventBroker()
        sub = broker.subscribe("s1")
        broker.close_session("s1")
        sub.close()  # already terminated by the broker: no second sentinel
        events = list(sub)
        assert [e["type"] for e in events] == ["end"]

    def test_end_event_reaches_a_full_queue(self):
        """The terminal event must never be dropped by backpressure: a
        subscriber that stopped draining still sees its stream end."""
        broker = EventBroker()
        sub = broker.subscribe("s1", maxsize=2)
        for i in range(4):
            broker.publish("s1", {"type": "gauge", "seq": i})
        broker.close_session("s1", reason="closed")
        events = list(sub)  # would hang forever if 'end' were dropped
        assert events[-1]["type"] == "end"
        assert sub.dropped == 3  # 2 overflow drops + 1 evicted for 'end'


class TestManagerPublishing:
    def test_every_wealth_spending_show_publishes_a_gauge_event(self, census):
        manager = SessionManager()
        manager.register_dataset(census, name="census")
        sid = manager.create_session("census")
        sub = manager.events.subscribe(sid)
        panels = [("age", Eq("sex", "Female")),
                  ("age", Not(Eq("sex", "Female"))),
                  ("education", Eq("sex", "Female"))]
        for attribute, where in panels:
            manager.show(sid, attribute, where=where)
        manager.show(sid, "occupation", descriptive=True)  # spends nothing
        events = [sub.get(timeout=1) for _ in range(sub.pending())]
        gauges = [e for e in events if e["type"] == "gauge"]
        decisions = [e for e in events if e["type"] == "decision"]
        assert len(gauges) == len(panels)
        assert len(decisions) == len(panels)
        # gauge seq mirrors the decision log, wealth is strictly spent down
        assert [g["seq"] for g in gauges] == [0, 1, 2]
        wealths = [g["wealth"] for g in gauges]
        assert wealths == sorted(wealths, reverse=True)

    def test_revision_verbs_publish_decision_events(self, census):
        manager = SessionManager()
        manager.register_dataset(census, name="census")
        sid = manager.create_session("census")
        manager.show(sid, "age", where=Eq("sex", "Female"))
        manager.show(sid, "age", where=Not(Eq("sex", "Female")))
        sub = manager.events.subscribe(sid)
        manager.star(sid, 1)
        manager.override_with_means(sid, 2)
        events = [sub.get(timeout=1) for _ in range(sub.pending())]
        kinds = [e["record"]["event"] for e in events
                 if e["type"] == "decision"]
        assert kinds[0] == "star"
        assert "override" in kinds
        # event order matches decision-log order
        seqs = [e["record"]["seq"] for e in events if e["type"] == "decision"]
        assert seqs == sorted(seqs)


@pytest.fixture()
def server(census):
    service = ExplorationService(max_sessions=8)
    service.register_dataset(census, name="census")
    with ServerThread(service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with Client(port=server.port) as c:
        yield c


class TestSseRoute:
    def test_subscriber_observes_gauge_for_every_spending_show(self, client):
        sid = client.create_session("census")
        received: list[dict] = []
        stream = client.events(sid, timeout=10)
        frames = iter(stream)
        # consume the hello frame *before* driving shows: the subscription
        # is attached server-side before the head is written, so from here
        # on no event can be missed.
        received.append(next(frames))

        def consume():
            with stream:
                received.extend(frames)

        consumer = threading.Thread(target=consume)
        consumer.start()
        panels = [("age", Eq("sex", "Female")),
                  ("age", Not(Eq("sex", "Female")))]
        for attribute, where in panels:
            client.show(sid, attribute, where=where)
        client.show(sid, "education", descriptive=True)
        client.close_session(sid)
        consumer.join(timeout=10)
        assert not consumer.is_alive()

        types = [e["type"] for e in received]
        assert types[0] == "hello"
        assert types[-1] == "end" and received[-1]["reason"] == "closed"
        gauges = [e for e in received if e["type"] == "gauge"]
        assert len(gauges) == len(panels)  # one per wealth-spending show
        assert all(e["session_id"] == sid for e in received)
        # the hello frame carries the live gauge so UIs render immediately
        assert received[0]["gauge"]["session_id"] == sid

    def test_unknown_session_answers_json_envelope(self, client):
        with pytest.raises(ApiError) as exc_info:
            client.events("ghost")
        assert exc_info.value.code == "SESSION"
        assert exc_info.value.status == 404

    def test_evicted_session_answers_session_evicted(self, census):
        clock = [0.0]
        manager = SessionManager(idle_timeout=5.0, clock=lambda: clock[0])
        service = ExplorationService(manager=manager)
        service.register_dataset(census, name="census")
        with ServerThread(service) as srv, Client(port=srv.port) as client:
            sid = client.create_session("census")
            clock[0] = 100.0
            with pytest.raises(ApiError) as exc_info:
                client.events(sid)
            assert exc_info.value.code == "SESSION_EVICTED"
            assert exc_info.value.status == 410
            assert exc_info.value.details["dataset"] == "census"
            assert exc_info.value.details["export"]["schema_version"] == 1

    def test_eviction_ends_live_streams(self, census):
        clock = [0.0]
        manager = SessionManager(idle_timeout=5.0, clock=lambda: clock[0])
        service = ExplorationService(manager=manager)
        service.register_dataset(census, name="census")
        with ServerThread(service) as srv, Client(port=srv.port) as client:
            sid = client.create_session("census")
            stream = client.events(sid, timeout=10)
            clock[0] = 100.0
            manager.evict_idle()
            events = list(stream)
            assert events[-1]["type"] == "end"
            assert events[-1]["reason"] == "evicted"
