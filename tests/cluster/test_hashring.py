"""The ring is the cluster's placement function: deterministic, minimal
movement, tolerably balanced.  These properties are what make shard
moves rare and reconstructible — every one the router *does* perform is
paired with a durable-store replay, so fewer/reproducible moves is a
correctness budget, not just a performance one."""

from __future__ import annotations

import pytest

from repro.cluster import DEFAULT_REPLICAS, HashRing, ring_hash


def _keys(n: int = 500) -> list[str]:
    return [f"r{index:08x}sess" for index in range(n)]


class TestRingHash:
    def test_deterministic_and_64_bit(self):
        assert ring_hash("w0#3") == ring_hash("w0#3")
        assert 0 <= ring_hash("anything") < 2 ** 64

    def test_distinct_keys_distinct_points(self):
        points = {ring_hash(f"w{i}#{j}") for i in range(8) for j in range(64)}
        assert len(points) == 8 * 64


class TestHashRing:
    def test_empty_ring_owns_nothing(self):
        assert HashRing().owner("s1") is None

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for node in ("w0", "w1", "w2"):
                ring.add(node)
        keys = _keys()
        assert a.assignment(keys) == b.assignment(keys)

    def test_join_order_is_invisible(self):
        a, b = HashRing(), HashRing()
        for node in ("w0", "w1", "w2"):
            a.add(node)
        for node in ("w2", "w0", "w1"):
            b.add(node)
        keys = _keys()
        assert a.assignment(keys) == b.assignment(keys)

    def test_removal_moves_only_the_dead_workers_keys(self):
        ring = HashRing()
        for node in ("w0", "w1", "w2", "w3"):
            ring.add(node)
        keys = _keys()
        before = ring.assignment(keys)
        ring.remove("w2")
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != "w2":
                assert after[key] == before[key]
            else:
                assert after[key] != "w2"

    def test_rejoin_restores_previous_placement(self):
        ring = HashRing()
        for node in ("w0", "w1", "w2"):
            ring.add(node)
        keys = _keys()
        before = ring.assignment(keys)
        ring.remove("w1")
        ring.add("w1")
        assert ring.assignment(keys) == before

    def test_add_remove_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("w0")
        ring.remove("w0")
        assert len(ring) == 0
        assert "w0" not in ring

    def test_every_node_gets_some_keys(self):
        ring = HashRing(replicas=DEFAULT_REPLICAS)
        nodes = [f"w{i}" for i in range(4)]
        for node in nodes:
            ring.add(node)
        owners = set(ring.assignment(_keys(2000)).values())
        assert owners == set(nodes)

    def test_balance_is_within_a_small_factor(self):
        """With 64 virtual points the per-worker spread over many random
        session ids stays within a few x of uniform (the ring's job is
        minimal movement, not perfect balance)."""
        ring = HashRing()
        nodes = [f"w{i}" for i in range(4)]
        for node in nodes:
            ring.add(node)
        counts = {node: 0 for node in nodes}
        for key, owner in ring.assignment(_keys(4000)).items():
            counts[owner] += 1
        expected = 4000 / len(nodes)
        for node, count in counts.items():
            assert count > expected / 4, (node, counts)
            assert count < expected * 4, (node, counts)

    def test_nodes_sorted(self):
        ring = HashRing()
        for node in ("w2", "w0", "w1"):
            ring.add(node)
        assert ring.nodes == ("w0", "w1", "w2")
