"""Router semantics over in-process workers sharing one durable store.

:class:`LocalWorker` swaps out the HTTP hop but keeps every router code
path — validation, hashing, ownership tracking, fresh recovers,
failover — so the shard-move contract is testable without OS processes
(the supervisor and kill-9 suites cover the real-process side).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.service import ExplorationService
from repro.cluster import LocalWorker, RouterService
from repro.cluster.router import _MAX_FAILOVERS, _assigned_session_id
from repro.exploration.dataset import Dataset
from repro.service import SessionManager
from repro.store import MemorySessionStore

_WHERE = {"op": "eq", "column": "color", "value": "red"}


def _dataset(name: str = "d") -> Dataset:
    rng = np.random.default_rng(424242)
    n = 400
    return Dataset(
        {
            "color": rng.choice(("red", "blue", "green"), size=n),
            "shape": rng.choice(("circle", "square"), size=n),
            "size": rng.choice(("small", "large"), size=n),
        },
        categorical=["color", "shape", "size"],
        name=name,
    )


def _make(n_workers: int = 2):
    """(router, managers-by-worker-id, shared store)."""
    store = MemorySessionStore()
    router = RouterService()
    managers: dict[str, SessionManager] = {}
    for index in range(n_workers):
        manager = SessionManager(store=store)
        manager.register_dataset(_dataset(f"view-w{index}"), name="d")
        worker_id = f"w{index}"
        managers[worker_id] = manager
        router.add_worker(
            worker_id,
            LocalWorker(worker_id,
                        ExplorationService(manager=manager, max_sessions=None)),
        )
    return router, managers, store


def _ok(envelope: dict) -> dict:
    assert envelope.get("ok"), envelope
    return envelope["result"]


def _err(envelope: dict) -> dict:
    assert not envelope.get("ok"), envelope
    return envelope["error"]


def _create(router, **extra) -> str:
    payload = {"v": 2, "cmd": "create_session", "dataset": "d", **extra}
    return _ok(router.handle_dict(payload))["session_id"]


class _DeadBackend:
    """A worker whose connection always fails (the crashed-process model)."""

    def __init__(self):
        self.calls = 0

    def handle_dict(self, request):
        self.calls += 1
        raise ConnectionError("worker is gone")

    def healthz(self):
        raise ConnectionError("worker is gone")


class TestSessionIdAssignment:
    def test_assigned_ids_are_r_prefixed(self):
        router, _, _ = _make()
        sid = _create(router)
        assert sid.startswith("r")

    def test_idem_token_makes_the_id_deterministic(self):
        assert _assigned_session_id("tok-1") == _assigned_session_id("tok-1")
        assert _assigned_session_id("tok-1") != _assigned_session_id("tok-2")

    def test_retried_create_replays_one_session(self):
        router, managers, _ = _make()
        first = router.handle_dict(
            {"v": 2, "cmd": "create_session", "dataset": "d", "idem": "c-tok"}
        )
        second = router.handle_dict(
            {"v": 2, "cmd": "create_session", "dataset": "d", "idem": "c-tok"}
        )
        assert _ok(first)["session_id"] == _ok(second)["session_id"]
        live = [
            sid for manager in managers.values()
            for sid in manager.session_ids()
        ]
        assert len(live) == 1

    def test_explicit_session_id_is_respected(self):
        router, _, _ = _make()
        sid = _create(router, session_id="mysess")
        assert sid == "mysess"


class TestPassThrough:
    def test_show_star_wealth_roundtrip(self):
        router, _, _ = _make()
        sid = _create(router)
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        hyp = view["hypothesis"]["id"]
        starred = _ok(router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid, "hypothesis_id": hyp}
        ))
        assert starred["hypothesis"]["starred"] is True
        wealth = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))
        assert 0 <= wealth["wealth"] < 0.05

    def test_pipeline_with_prev_forwards_whole(self):
        router, _, _ = _make()
        sid = _create(router)
        result = _ok(router.handle_dict({
            "v": 2, "cmd": "pipeline", "failure_policy": "abort_on_error",
            "commands": [
                {"cmd": "show", "session_id": sid, "attribute": "shape",
                 "where": _WHERE},
                {"cmd": "star", "session_id": sid, "hypothesis_id": "$prev"},
            ],
        }))
        assert all(slot["ok"] for slot in result["slots"])

    def test_garbage_is_an_envelope_not_an_exception(self):
        router, _, _ = _make()
        assert _err(router.handle_dict({"v": 2, "cmd": "nope"}))
        assert _err(router.handle_dict({"v": 2}))

    def test_multi_session_pipeline_rejected(self):
        router, _, _ = _make()
        a, b = _create(router), _create(router)
        error = _err(router.handle_dict({
            "v": 2, "cmd": "pipeline",
            "commands": [
                {"cmd": "wealth", "session_id": a},
                {"cmd": "wealth", "session_id": b},
            ],
        }))
        assert error["code"] == "PROTOCOL"

    def test_pipeline_create_needs_explicit_sid(self):
        router, _, _ = _make()
        error = _err(router.handle_dict({
            "v": 2, "cmd": "pipeline",
            "commands": [{"cmd": "create_session", "dataset": "d"}],
        }))
        assert error["code"] == "PROTOCOL"

    def test_close_session_clears_ownership(self):
        router, _, _ = _make()
        sid = _create(router)
        _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))
        assert sid in router._owner
        _ok(router.handle_dict(
            {"v": 2, "cmd": "close_session", "session_id": sid}
        ))
        assert sid not in router._owner

    def test_empty_router_reports_no_workers(self):
        router = RouterService()
        error = _err(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": "s1"}
        ))
        assert error["code"] == "INTERNAL"
        assert "no live workers" in error["message"]


class TestShardMove:
    def test_idem_retry_across_move_never_double_spends(self):
        router, managers, _ = _make(3)
        sid = _create(router)
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        hyp = view["hypothesis"]["id"]
        first = router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": hyp, "idem": "star-tok"}
        )
        wealth_before = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"]
        old_owner = router.owner_of(sid)
        log_before = managers[old_owner].decision_log_bytes(sid)

        router.remove_worker(old_owner)

        retried = router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": hyp, "idem": "star-tok"}
        )
        assert retried == first
        wealth_after = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"]
        assert wealth_after == pytest.approx(wealth_before, abs=1e-12)
        new_owner = router.owner_of(sid)
        assert new_owner != old_owner
        assert managers[new_owner].decision_log_bytes(sid) == log_before
        assert router.shard_moves >= 1

    def test_fresh_recover_beats_a_stale_boot_replica(self):
        """A worker that recovered every stored session at boot holds a
        replica that predates the owner's later appends; on shard move
        the router forces a re-read, so the stale copy never answers."""
        router, managers, _ = _make(2)
        sid = _create(router)
        owner = router.owner_of(sid)
        other = next(wid for wid in managers if wid != owner)
        # The sibling "boots" now: its replica knows only the create.
        managers[other].recover_all()
        # The owner keeps exploring — appends the sibling has not seen.
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        _ok(router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view["hypothesis"]["id"]}
        ))
        final_wealth = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"]

        router.remove_worker(owner)

        moved_wealth = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"]
        assert moved_wealth == pytest.approx(final_wealth, abs=1e-12)

    def test_continued_exploration_after_move(self):
        router, _, _ = _make(3)
        sid = _create(router)
        _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        router.remove_worker(router.owner_of(sid))
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "size", "where": _WHERE}
        ))
        assert view["hypothesis"]["id"] == 2


class TestFailover:
    def test_dataset_reads_fail_over_dead_workers(self):
        router, _, _ = _make(2)
        router.add_worker("w0", _DeadBackend())  # replace backend in place
        result = _ok(router.handle_dict({"v": 2, "cmd": "list_datasets"}))
        assert result["datasets"][0]["name"] == "d"
        assert "w0" not in router.worker_ids()
        assert router.failovers >= 1

    def test_read_only_session_request_fails_over(self):
        router, _, _ = _make(2)
        sid = _create(router)
        owner = router.owner_of(sid)
        router.add_worker(owner, _DeadBackend())
        wealth = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))
        assert wealth["wealth"] > 0
        assert owner not in router.worker_ids()

    def test_non_idempotent_request_surfaces_the_failure(self):
        router, _, _ = _make(2)
        sid = _create(router)
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        owner = router.owner_of(sid)
        router.add_worker(owner, _DeadBackend())
        error = _err(router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view["hypothesis"]["id"]}
        ))
        assert error["code"] == "INTERNAL"
        assert error["details"]["worker"] == owner
        assert "idem token" in error["message"]

    def test_idem_stamped_mutation_does_fail_over(self):
        router, _, _ = _make(2)
        sid = _create(router)
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "shape", "where": _WHERE}
        ))
        owner = router.owner_of(sid)
        router.add_worker(owner, _DeadBackend())
        starred = _ok(router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view["hypothesis"]["id"], "idem": "s-tok"}
        ))
        assert starred["hypothesis"]["starred"] is True

    def test_failover_is_bounded(self):
        router = RouterService()
        backends = [_DeadBackend() for _ in range(_MAX_FAILOVERS + 2)]
        for index, backend in enumerate(backends):
            router.add_worker(f"w{index}", backend)
        error = _err(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": "s1"}
        ))
        assert error["code"] == "INTERNAL"
        # Each attempt is at most one fresh-recover plus one forward, so
        # a bounded failover loop touches at most 2 * _MAX_FAILOVERS
        # calls — never all six corpses, never an unbounded spin.
        assert sum(b.calls for b in backends) <= 2 * _MAX_FAILOVERS


class TestAggregation:
    def test_stats_aggregates_across_workers(self):
        router, _, _ = _make(2)
        for _ in range(3):
            _create(router)
        result = _ok(router.handle_dict({"v": 2, "cmd": "stats"}))
        assert result["role"] == "router"
        assert result["sessions"] == 3
        assert set(result["workers"]) == {"w0", "w1"}
        assert result["router"]["workers"] == 2
        assert result["router"]["forwarded"] >= 3

    def test_per_session_stats_still_route(self):
        router, _, _ = _make(2)
        sid = _create(router)
        result = _ok(router.handle_dict(
            {"v": 2, "cmd": "stats", "session_id": sid}
        ))
        assert result["session_id"] == sid

    def test_healthz_reports_fleet_and_store(self):
        router, _, _ = _make(2)
        router.store_info = {"backend": "jsonl", "fsync": "batch",
                             "path": "/tmp/x"}
        sid = _create(router)
        result = router.healthz()["result"]
        assert result["status"] == "healthy"
        assert result["role"] == "router"
        assert result["sessions"] == 1
        assert set(result["workers"]) == {"w0", "w1"}
        owner = router.owner_of(sid)
        assert result["workers"][owner]["sessions"] == 1
        # Occupancy is None for uncapped workers, a ratio otherwise —
        # either way the key is part of the router-mode healthz shape.
        assert "occupancy" in result["workers"][owner]
        assert result["store"]["backend"] == "jsonl"

    def test_healthz_degraded_when_a_worker_is_unreachable(self):
        router, _, _ = _make(2)
        router.add_worker("w1", _DeadBackend())
        result = router.healthz()["result"]
        assert result["status"] == "degraded"
        assert result["workers"]["w1"]["status"] == "unreachable"
