"""The supervisor over real OS processes: boot, crash, restart.

Small census (500 rows) keeps worker boot to a couple of seconds; the
full-scale crash semantics behind a router live in
``tests/integration/test_kill9_router.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro.cluster import BANNER_RE, WorkerSupervisor

ROWS = 500

pytestmark = pytest.mark.usefixtures("_src_on_pythonpath")


@pytest.fixture
def _src_on_pythonpath(monkeypatch):
    """Workers inherit our env; make sure they can import repro even
    when the test process found it some other way."""
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH", src + (os.pathsep + existing if existing else ""))


def _healthz(worker) -> dict:
    conn = http.client.HTTPConnection(worker.host, worker.port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _supervisor(tmp_path, count=1, **kwargs) -> WorkerSupervisor:
    return WorkerSupervisor(
        count,
        rows=ROWS,
        seed=0,
        store="jsonl",
        store_path=str(tmp_path / "store"),
        **kwargs,
    )


class TestBannerRegex:
    def test_matches_the_serve_banner(self):
        line = ("repro API v2 serving on http://127.0.0.1:43210 "
                "(POST /v1/command, GET /v1/events/{session}; Ctrl-C stops)")
        match = BANNER_RE.search(line)
        assert match and match.group(2) == "43210"


class TestSupervisor:
    def test_count_validated(self, tmp_path):
        with pytest.raises(ValueError):
            _supervisor(tmp_path, count=0)

    def test_boot_and_healthz_includes_store_info(self, tmp_path):
        with _supervisor(tmp_path) as sup:
            worker = sup.workers["w0"]
            assert worker.port > 0
            result = _healthz(worker)["result"]
            assert result["status"] == "healthy"
            assert result["store"] == {"backend": "jsonl", "fsync": "batch"}
        assert not worker.alive()

    def test_sigkill_restarts_with_fresh_port_and_pid(self, tmp_path):
        deaths, ready = [], []
        sup = _supervisor(
            tmp_path,
            on_death=deaths.append,
            on_ready=lambda wid, w: ready.append((wid, w)),
        )
        with sup:
            old = sup.workers["w0"]
            old_pid = sup.kill("w0", signal.SIGKILL)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                current = sup.workers.get("w0")
                if (current is not None and current.pid != old_pid
                        and current.alive()):
                    break
                time.sleep(0.1)
            else:  # pragma: no cover - hang guard
                pytest.fail(f"worker never restarted; tail: {old.tail[-10:]}")
            assert deaths == ["w0"]
            assert ready and ready[-1][0] == "w0"
            replacement = ready[-1][1]
            assert replacement.pid != old_pid
            assert sup.deaths == 1 and sup.restarts == 1
            assert _healthz(replacement)["result"]["status"] == "healthy"

    def test_stop_is_idempotent(self, tmp_path):
        sup = _supervisor(tmp_path)
        sup.start()
        worker = sup.workers["w0"]
        sup.stop()
        sup.stop()
        assert not worker.alive()
        assert sup.workers == {}
