"""The α-wealth ledger: Eq. (5) arithmetic and feasibility bounds."""

import pytest

from repro.errors import InvalidParameterError
from repro.procedures.alpha_investing.wealth import WealthLedger


class TestInitialization:
    def test_default_initial_wealth(self):
        ledger = WealthLedger(alpha=0.05)
        assert ledger.initial_wealth == pytest.approx(0.05 * 0.95)
        assert ledger.wealth == ledger.initial_wealth
        assert ledger.omega == 0.05

    def test_custom_eta(self):
        ledger = WealthLedger(alpha=0.1, eta=0.5)
        assert ledger.initial_wealth == pytest.approx(0.05)

    def test_omega_cannot_exceed_alpha(self):
        with pytest.raises(InvalidParameterError):
            WealthLedger(alpha=0.05, omega=0.06)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1])
    def test_alpha_validation(self, alpha):
        with pytest.raises(InvalidParameterError):
            WealthLedger(alpha=alpha)

    @pytest.mark.parametrize("eta", [0.0, 1.5])
    def test_eta_validation(self, eta):
        with pytest.raises(InvalidParameterError):
            WealthLedger(alpha=0.05, eta=eta)


class TestEquationFive:
    def test_rejection_pays_omega(self):
        ledger = WealthLedger(alpha=0.05)
        before = ledger.wealth
        ledger.settle(budget=0.01, rejected=True)
        assert ledger.wealth == pytest.approx(before + 0.05)

    def test_acceptance_charges_odds(self):
        ledger = WealthLedger(alpha=0.05)
        before = ledger.wealth
        ledger.settle(budget=0.01, rejected=False)
        assert ledger.wealth == pytest.approx(before - 0.01 / 0.99)

    def test_charge_formula(self):
        assert WealthLedger.charge_for(0.5) == pytest.approx(1.0)
        assert WealthLedger.charge_for(0.0) == 0.0

    def test_events_record_history(self):
        ledger = WealthLedger(alpha=0.05)
        ledger.settle(0.01, rejected=False)
        ledger.settle(0.02, rejected=True)
        events = ledger.events
        assert len(events) == 2
        assert events[0].wealth_after == events[1].wealth_before
        assert events[1].rejected

    def test_zero_budget_acceptance_is_free(self):
        ledger = WealthLedger(alpha=0.05)
        before = ledger.wealth
        ledger.settle(0.0, rejected=False)
        assert ledger.wealth == before


class TestFeasibility:
    def test_max_affordable_solves_charge_equation(self):
        ledger = WealthLedger(alpha=0.05)
        budget = ledger.max_affordable_budget()
        # Charging this budget consumes exactly the available wealth.
        assert WealthLedger.charge_for(budget) == pytest.approx(ledger.wealth)

    def test_wealth_never_negative_at_max_budget(self):
        ledger = WealthLedger(alpha=0.05)
        for _ in range(200):
            budget = ledger.max_affordable_budget()
            if budget <= 0:
                break
            ledger.settle(budget, rejected=False)
            assert ledger.wealth >= -1e-12

    def test_paper_bound_typo_would_overdraw(self):
        """Sec. 5.1 prints alpha_j <= W/(1-W); that bound overdraws wealth."""
        ledger = WealthLedger(alpha=0.5, eta=0.9)  # W(0) = 0.45
        w = ledger.wealth
        paper_bound = w / (1.0 - w)  # 0.818...
        assert WealthLedger.charge_for(paper_bound) > w  # would go negative
        ours = ledger.max_affordable_budget()
        assert WealthLedger.charge_for(ours) <= w + 1e-12

    def test_unaffordable_budget_rejected(self):
        ledger = WealthLedger(alpha=0.05)
        with pytest.raises(InvalidParameterError):
            ledger.settle(0.9, rejected=False)

    def test_can_afford_boundary(self):
        ledger = WealthLedger(alpha=0.05)
        assert ledger.can_afford(ledger.max_affordable_budget())
        assert not ledger.can_afford(0.99)
        assert not ledger.can_afford(0.0)
        assert not ledger.can_afford(1.0)

    def test_exhausted_ledger_affords_nothing(self):
        ledger = WealthLedger(alpha=0.05)
        ledger.settle(ledger.max_affordable_budget(), rejected=False)
        assert ledger.wealth == pytest.approx(0.0, abs=1e-12)
        assert ledger.max_affordable_budget() == 0.0

    def test_clamp_budget(self):
        ledger = WealthLedger(alpha=0.05)
        assert ledger.clamp_budget(0.9) == ledger.max_affordable_budget()
        assert ledger.clamp_budget(-0.5) == 0.0
        assert ledger.clamp_budget(0.001) == 0.001


class TestReset:
    def test_reset_restores_initial_state(self):
        ledger = WealthLedger(alpha=0.05)
        ledger.settle(0.01, rejected=True)
        ledger.settle(0.01, rejected=False)
        ledger.reset()
        assert ledger.wealth == ledger.initial_wealth
        assert ledger.events == ()


class TestMFDRIdentity:
    def test_wealth_identity_bounds_discoveries(self, rng):
        """E[V] <= alpha * (E[R] + eta) follows from the wealth martingale;
        sanity-check the bookkeeping identity W(j) >= W(0) + omega*R - charges."""
        ledger = WealthLedger(alpha=0.05)
        rejections = 0
        charges = 0.0
        for _ in range(100):
            budget = min(0.01, ledger.max_affordable_budget())
            if budget <= 0:
                break
            rejected = bool(rng.random() < 0.3)
            if rejected:
                rejections += 1
            else:
                charges += WealthLedger.charge_for(budget)
            ledger.settle(budget, rejected)
        expected = ledger.initial_wealth + ledger.omega * rejections - charges
        assert ledger.wealth == pytest.approx(max(expected, 0.0), abs=1e-9)
