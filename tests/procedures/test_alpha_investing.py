"""The α-investing engine: protocol, exhaustion, never-overturn."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.procedures.alpha_investing import (
    AlphaInvesting,
    BetaFarsighted,
    DeltaHopeful,
    EpsilonHybrid,
    GammaFixed,
    PsiSupport,
)
from repro.procedures.base import apply_to_stream

ALL_POLICIES = [
    lambda: BetaFarsighted(0.25),
    lambda: GammaFixed(10.0),
    lambda: DeltaHopeful(10.0),
    lambda: EpsilonHybrid(0.5, 10.0, 10.0),
    lambda: PsiSupport(0.5, 10.0),
]


class TestProtocol:
    def test_rejection_increases_wealth(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        before = proc.wealth
        d = proc.test(1e-9)
        assert d.rejected
        assert proc.wealth == pytest.approx(before + 0.05)
        assert d.wealth_after == proc.wealth

    def test_acceptance_decreases_wealth(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        before = proc.wealth
        d = proc.test(0.99)
        assert not d.rejected
        assert proc.wealth < before

    def test_decision_threshold_is_budget(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        w0 = proc.initial_wealth
        expected_budget = w0 / (10.0 + w0)
        d = proc.test(expected_budget * 0.999)
        assert d.rejected
        proc.reset()
        d = proc.test(expected_budget * 1.001)
        assert not d.rejected

    def test_decisions_logged_in_order(self):
        proc = AlphaInvesting(GammaFixed(10.0))
        proc.test(0.5)
        proc.test(0.001)
        assert [d.index for d in proc.decisions] == [0, 1]
        assert proc.num_tested == 2
        assert proc.num_rejected == 1

    def test_invalid_p_value(self):
        proc = AlphaInvesting(GammaFixed(10.0))
        with pytest.raises(InvalidParameterError):
            proc.test(1.5)

    def test_invalid_support_fraction(self):
        proc = AlphaInvesting(PsiSupport())
        with pytest.raises(InvalidParameterError):
            proc.test(0.5, support_fraction=0.0)

    def test_name_comes_from_policy(self):
        assert AlphaInvesting(GammaFixed()).name == "gamma-fixed"


class TestExhaustion:
    def test_gamma_fixed_exhausts_after_gamma_accepts(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        for _ in range(10):
            d = proc.test(0.99)
            assert not d.exhausted
        d = proc.test(0.0001)  # would reject, but nothing is left to invest
        assert d.exhausted
        assert not d.rejected
        assert d.level == 0.0
        assert proc.is_exhausted

    def test_exhausted_tests_leave_wealth_untouched(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        for _ in range(10):
            proc.test(0.99)
        w = proc.wealth
        proc.test(0.5)
        assert proc.wealth == w

    def test_beta_farsighted_never_exhausts(self):
        proc = AlphaInvesting(BetaFarsighted(0.25), alpha=0.05)
        for _ in range(300):
            d = proc.test(0.99)
            assert not d.exhausted
        assert not proc.is_exhausted

    def test_rejection_rescues_gamma_fixed(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        for _ in range(9):
            proc.test(0.99)
        proc.test(1e-9)  # rejection refills omega
        # 9 accepts burned 9*W0/10; one reject added alpha=0.05 > W0.
        for _ in range(10):
            d = proc.test(0.99)
        assert sum(1 for d in proc.decisions if d.exhausted) < 3


class TestNeverOverturn:
    @pytest.mark.parametrize("make_policy", ALL_POLICIES)
    def test_appending_tests_never_changes_prior_decisions(self, make_policy, rng):
        proc = AlphaInvesting(make_policy(), alpha=0.05)
        p_values = rng.uniform(size=60) ** 2
        snapshots = []
        for p in p_values:
            proc.test(float(p))
            snapshots.append([d.rejected for d in proc.decisions])
        final = snapshots[-1]
        for i, snap in enumerate(snapshots):
            assert snap == final[: i + 1]

    @pytest.mark.parametrize("make_policy", ALL_POLICIES)
    def test_reset_reproduces_identical_decisions(self, make_policy, rng):
        p_values = rng.uniform(size=40)
        proc = AlphaInvesting(make_policy(), alpha=0.05)
        first = apply_to_stream(proc, p_values)
        second = apply_to_stream(proc, p_values)  # apply_to_stream resets
        assert np.array_equal(first, second)


class TestWealthInvariants:
    @pytest.mark.parametrize("make_policy", ALL_POLICIES)
    def test_wealth_never_negative(self, make_policy, rng):
        proc = AlphaInvesting(make_policy(), alpha=0.05)
        for p in rng.uniform(size=200):
            proc.test(float(p))
            assert proc.wealth >= -1e-12

    @pytest.mark.parametrize("make_policy", ALL_POLICIES)
    def test_budgets_below_alpha_wealth_bound(self, make_policy, rng):
        proc = AlphaInvesting(make_policy(), alpha=0.05)
        for p in rng.uniform(size=100):
            wealth_before = proc.wealth
            d = proc.test(float(p))
            if not d.exhausted:
                # Feasibility: the worst-case charge was affordable.
                assert d.level / (1.0 - d.level) <= wealth_before + 1e-9

    def test_eta_omega_overrides(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05, eta=1.0, omega=0.02)
        assert proc.initial_wealth == pytest.approx(0.05)
        proc.test(1e-9)
        assert proc.wealth == pytest.approx(0.05 + 0.02)


class TestSupportFractionPlumbing:
    def test_psi_support_uses_fraction(self):
        proc = AlphaInvesting(PsiSupport(0.5, 10.0), alpha=0.05)
        d_full = proc.test(0.5, support_fraction=1.0)
        proc.reset()
        d_thin = proc.test(0.5, support_fraction=0.04)
        assert d_thin.level == pytest.approx(d_full.level * 0.2)

    def test_other_policies_ignore_fraction(self):
        proc = AlphaInvesting(GammaFixed(10.0), alpha=0.05)
        d_full = proc.test(0.5, support_fraction=1.0)
        proc.reset()
        d_thin = proc.test(0.5, support_fraction=0.01)
        assert d_thin.level == d_full.level
