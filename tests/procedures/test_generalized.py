"""Generalized alpha-investing (Aharoni & Rosset): conditions and control."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.procedures.alpha_investing.generalized import (
    ConstantLevelGAI,
    GAIBid,
    GAIInvesting,
    ProportionalGAI,
)
from repro.procedures.base import apply_to_stream
from repro.procedures.registry import make_procedure


class TestGAIBid:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GAIBid(alpha_j=0.0, phi_j=0.01)
        with pytest.raises(InvalidParameterError):
            GAIBid(alpha_j=1.0, phi_j=0.01)
        with pytest.raises(InvalidParameterError):
            GAIBid(alpha_j=0.01, phi_j=-0.1)


class TestRewardConditions:
    def test_reward_respects_both_bounds(self):
        alpha = 0.05
        for alpha_j, phi_j in [(0.01, 0.005), (0.001, 0.02), (0.04, 0.04)]:
            bid = GAIBid(alpha_j=alpha_j, phi_j=phi_j)
            psi = GAIInvesting.max_reward(bid, alpha)
            null_bound = phi_j / alpha_j + alpha - 1.0
            assert psi <= max(0.0, null_bound) + 1e-12
            assert psi <= phi_j + alpha + 1e-12

    def test_null_bound_binds_for_large_level(self):
        # phi/alpha_j + a - 1 = 0.04 - 0.95 < 0 -> floored at 0.
        bid = GAIBid(alpha_j=0.5, phi_j=0.02)
        assert GAIInvesting.max_reward(bid, 0.05) == 0.0

    def test_discovery_bound_binds_for_small_level(self):
        # phi/alpha_j + a - 1 = 20 - 0.95 > phi + alpha = 0.07.
        bid = GAIBid(alpha_j=0.001, phi_j=0.02)
        assert GAIInvesting.max_reward(bid, 0.05) == pytest.approx(0.07)

    def test_foster_stine_special_case_collapses(self):
        # phi = alpha_j/(1-alpha_j): both bounds coincide at phi + alpha.
        alpha, alpha_j = 0.05, 0.01
        phi = alpha_j / (1.0 - alpha_j)
        bid = GAIBid(alpha_j=alpha_j, phi_j=phi)
        assert GAIInvesting.max_reward(bid, alpha) == pytest.approx(phi + alpha)
        assert phi / alpha_j + alpha - 1.0 == pytest.approx(phi + alpha)


class TestEngine:
    def test_fee_charged_always(self):
        proc = GAIInvesting(ConstantLevelGAI(level=0.01, fee=0.005), alpha=0.05)
        before = proc.wealth
        proc.test(0.9)  # accept
        assert proc.wealth == pytest.approx(before - 0.005)

    def test_reward_on_rejection(self):
        proc = GAIInvesting(ConstantLevelGAI(level=0.01, fee=0.01), alpha=0.05)
        before = proc.wealth
        proc.test(0.001)  # reject
        psi = GAIInvesting.max_reward(GAIBid(0.01, 0.01), 0.05)
        assert psi > 0
        assert proc.wealth == pytest.approx(before - 0.01 + psi)

    def test_exhaustion_when_fee_unaffordable(self):
        proc = GAIInvesting(ConstantLevelGAI(level=0.01, fee=0.02), alpha=0.05)
        # W(0) = 0.0475 -> two fees of 0.02 affordable, third is not.
        proc.test(0.9)
        proc.test(0.9)
        d = proc.test(0.001)
        assert d.exhausted and not d.rejected
        assert proc.is_exhausted is False or proc.wealth >= 0  # wealth untouched

    def test_proportional_policy_is_thrifty(self):
        proc = GAIInvesting(ProportionalGAI(rate=0.2), alpha=0.05)
        for _ in range(200):
            d = proc.test(0.99)
            assert not d.exhausted
        assert proc.wealth > 0

    def test_wealth_never_negative(self, rng):
        proc = GAIInvesting(ProportionalGAI(rate=0.5), alpha=0.05)
        for p in rng.uniform(size=300):
            proc.test(float(p))
            assert proc.wealth >= 0

    def test_never_overturn(self, rng):
        proc = GAIInvesting(ProportionalGAI(rate=0.2), alpha=0.05)
        p_values = rng.uniform(size=50) ** 2
        snapshots = []
        for p in p_values:
            proc.test(float(p))
            snapshots.append([d.rejected for d in proc.decisions])
        final = snapshots[-1]
        for i, snap in enumerate(snapshots):
            assert snap == final[: i + 1]

    def test_reset(self, rng):
        proc = GAIInvesting(ProportionalGAI(rate=0.2), alpha=0.05)
        p = rng.uniform(size=30)
        first = apply_to_stream(proc, p)
        second = apply_to_stream(proc, p)
        assert np.array_equal(first, second)

    def test_registry_names(self):
        assert make_procedure("gai-proportional", rate=0.2).policy.rate == 0.2
        assert make_procedure("gai-constant", level=0.02).policy.level == 0.02


class TestGAIMFDRControl:
    def test_empirical_mfdr_under_global_null(self, rng):
        """E[V] / (E[R] + eta) <= alpha for the GAI engine, too."""
        alpha = 0.05
        total_v = 0.0
        total_r = 0.0
        reps = 2500  # E[R] per run is ~0.05, so this needs real sample size
        for _ in range(reps):
            proc = make_procedure("gai-proportional", alpha=alpha, rate=0.15)
            mask = apply_to_stream(proc, rng.uniform(size=40))
            total_v += mask.sum()
            total_r += mask.sum()
        mfdr = (total_v / reps) / (total_r / reps + (1 - alpha))
        assert mfdr <= alpha * 1.3

    def test_gai_has_power_on_signal(self, rng):
        from repro.workloads.synthetic import ZStreamGenerator

        gen = ZStreamGenerator(m=40, null_proportion=0.25)
        powers = []
        for _ in range(150):
            stream = gen.sample(rng)
            proc = make_procedure("gai-proportional", rate=0.15)
            mask = apply_to_stream(proc, stream.p_values)
            powers.append((mask & ~stream.null_mask).sum() / stream.num_alternatives)
        assert np.mean(powers) > 0.3


class TestPolicyValidation:
    def test_proportional_rate_bounds(self):
        with pytest.raises(InvalidParameterError):
            ProportionalGAI(rate=0.0)
        with pytest.raises(InvalidParameterError):
            ProportionalGAI(rate=1.0)

    def test_constant_level_bounds(self):
        with pytest.raises(InvalidParameterError):
            ConstantLevelGAI(level=0.0)
        with pytest.raises(InvalidParameterError):
            ConstantLevelGAI(level=0.01, fee=-1.0)

    def test_engine_eta_validation(self):
        with pytest.raises(InvalidParameterError):
            GAIInvesting(ProportionalGAI(), alpha=0.05, eta=0.0)
