"""Procedure registry: construction by name, parameter forwarding."""

import pytest

from repro.errors import UnknownProcedureError
from repro.procedures.alpha_investing import AlphaInvesting
from repro.procedures.base import BatchProcedure, StreamingProcedure
from repro.procedures.registry import (
    available_procedures,
    make_procedure,
    register_procedure,
)

PAPER_SERIES = [
    "pcer",
    "bonferroni",
    "bhfdr",
    "seqfdr",
    "beta-farsighted",
    "gamma-fixed",
    "delta-hopeful",
    "epsilon-hybrid",
    "psi-support",
]


class TestRegistry:
    def test_all_paper_series_registered(self):
        names = available_procedures()
        for name in PAPER_SERIES:
            assert name in names

    @pytest.mark.parametrize("name", PAPER_SERIES)
    def test_construction(self, name):
        proc = make_procedure(name, alpha=0.05)
        assert isinstance(proc, (BatchProcedure, StreamingProcedure))
        assert proc.alpha == 0.05

    def test_fresh_instance_each_call(self):
        a = make_procedure("gamma-fixed")
        b = make_procedure("gamma-fixed")
        assert a is not b
        a.test(0.001)
        assert b.num_tested == 0

    def test_parameter_forwarding(self):
        proc = make_procedure("gamma-fixed", gamma=50.0)
        assert isinstance(proc, AlphaInvesting)
        assert proc.policy.gamma == 50.0

    def test_eta_omega_forwarding_to_investing(self):
        proc = make_procedure("delta-hopeful", alpha=0.1, eta=1.0, omega=0.05)
        assert proc.initial_wealth == pytest.approx(0.1)
        assert proc.ledger.omega == 0.05

    def test_epsilon_hybrid_window_forwarding(self):
        proc = make_procedure("epsilon-hybrid", window=7)
        assert proc.policy.window == 7

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(UnknownProcedureError, match="available"):
            make_procedure("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(UnknownProcedureError):
            register_procedure("pcer", lambda alpha=0.05: None)

    def test_overwrite_flag(self):
        original = make_procedure("pcer")
        register_procedure("pcer", lambda alpha=0.05: original, overwrite=True)
        try:
            assert make_procedure("pcer") is original
        finally:
            from repro.procedures.pcer import PCER

            register_procedure("pcer", lambda alpha=0.05: PCER(alpha), overwrite=True)
