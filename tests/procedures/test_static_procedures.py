"""Static baselines: PCER, Bonferroni family, stepwise, BH/BY/Storey."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError, InvalidParameterError
from repro.procedures.base import apply_to_stream
from repro.procedures.bonferroni import (
    Bonferroni,
    SequentialBonferroni,
    Sidak,
    bonferroni_mask,
    sidak_mask,
)
from repro.procedures.fdr import (
    BenjaminiHochberg,
    StoreyBH,
    benjamini_hochberg_mask,
    benjamini_yekutieli_mask,
    storey_pi0_estimate,
)
from repro.procedures.pcer import PCER, pcer_mask
from repro.procedures.stepwise import hochberg_mask, holm_mask, simes_global_p


class TestPCER:
    def test_mask_is_raw_threshold(self):
        mask = pcer_mask([0.01, 0.05, 0.06], alpha=0.05)
        assert mask.tolist() == [True, True, False]

    def test_streaming_matches_mask(self, rng):
        p = rng.uniform(size=50)
        streamed = apply_to_stream(PCER(0.05), p)
        assert np.array_equal(streamed, pcer_mask(p, 0.05))

    def test_decisions_are_immutable_records(self):
        proc = PCER(0.05)
        d = proc.test(0.01)
        assert d.rejected and d.level == 0.05 and d.index == 0
        proc.test(0.9)
        assert proc.decisions[0] == d


class TestBonferroniFamily:
    def test_bonferroni_threshold(self):
        mask = bonferroni_mask([0.004, 0.006, 0.2, 0.9, 0.001], alpha=0.025)
        # threshold = 0.025/5 = 0.005
        assert mask.tolist() == [True, False, False, False, True]

    def test_sidak_slightly_more_liberal(self):
        p = [0.0102]
        # m=5: bonferroni 0.01, sidak 1-(0.95)^(1/5) ~ 0.01021
        assert not bonferroni_mask(p * 5, alpha=0.05)[0]
        assert sidak_mask(p * 5, alpha=0.05)[0]

    def test_empty_input(self):
        assert bonferroni_mask([], 0.05).size == 0
        assert sidak_mask([], 0.05).size == 0

    def test_classes_match_functions(self, rng):
        p = rng.uniform(size=20)
        assert np.array_equal(Bonferroni(0.05).decide(p), bonferroni_mask(p, 0.05))
        assert np.array_equal(Sidak(0.05).decide(p), sidak_mask(p, 0.05))

    def test_alpha_validation(self):
        with pytest.raises(InvalidParameterError):
            Bonferroni(alpha=0.0)
        with pytest.raises(InvalidParameterError):
            Bonferroni(alpha=1.0)


class TestSequentialBonferroni:
    def test_levels_halve(self):
        proc = SequentialBonferroni(alpha=0.05)
        levels = [proc.test(1.0).level for _ in range(5)]
        assert levels == pytest.approx([0.025, 0.0125, 0.00625, 0.003125, 0.0015625])

    def test_levels_sum_to_at_most_alpha(self):
        proc = SequentialBonferroni(alpha=0.05)
        total = sum(proc.test(1.0).level for _ in range(200))
        assert total <= 0.05 + 1e-12  # geometric series sums to alpha

    def test_power_collapses_with_index(self):
        proc = SequentialBonferroni(alpha=0.05)
        for _ in range(30):
            proc.test(1.0)
        # After 30 tests the threshold is alpha * 2^-31 ~ 2.3e-11: even a
        # p-value of 1e-8 — overwhelming evidence — can no longer reject.
        assert not proc.test(1e-8).rejected
        assert proc.test(1e-12).rejected

    def test_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            SequentialBonferroni(ratio=1.0)


class TestStepwise:
    def test_holm_dominates_bonferroni(self, rng):
        for _ in range(20):
            p = rng.uniform(size=15) ** 2
            holm = holm_mask(p, 0.05)
            bonf = bonferroni_mask(p, 0.05)
            assert np.all(holm | ~bonf)  # bonf rejected => holm rejected

    def test_hochberg_dominates_holm(self, rng):
        for _ in range(20):
            p = rng.uniform(size=15) ** 2
            assert np.all(hochberg_mask(p, 0.05) | ~holm_mask(p, 0.05))

    def test_holm_known_example(self):
        # Classic example: p = (.01, .04, .03, .005), m=4, alpha=.05
        # sorted: .005 <= .0125, .01 <= .0167, .03 > .025 stop.
        mask = holm_mask([0.01, 0.04, 0.03, 0.005], 0.05)
        assert mask.tolist() == [True, False, False, True]

    def test_hochberg_known_example(self):
        # p sorted: .005,.01,.03,.04 ; from top: .04 > .05/1? no: k=4 thr=.05;
        # .04 <= .05 -> reject all.
        mask = hochberg_mask([0.01, 0.04, 0.03, 0.005], 0.05)
        assert mask.tolist() == [True, True, True, True]

    def test_simes_more_powerful_than_min_bonferroni(self):
        p = [0.02, 0.03, 0.04]
        assert simes_global_p(p) <= 3 * min(p)

    def test_simes_single_value(self):
        assert simes_global_p([0.2]) == pytest.approx(0.2)

    def test_simes_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            simes_global_p([])


class TestBenjaminiHochberg:
    def test_known_example(self):
        # BH at alpha=.05 on sorted p: .001,.008,.039,.041,.042,.06,.074,.205
        # thresholds k/8*.05: .00625,.0125,.01875,.025,.03125,.0375,.04375,.05
        # largest k passing: k=5? .042 > .03125; k=4: .041 > .025; k=3: .039>.01875
        # k=2: .008 <= .0125 -> reject two smallest.
        p = [0.041, 0.008, 0.039, 0.001, 0.042, 0.06, 0.074, 0.205]
        mask = benjamini_hochberg_mask(p, 0.05)
        assert mask.tolist() == [False, True, False, True, False, False, False, False]

    def test_bh_dominates_bonferroni(self, rng):
        for _ in range(20):
            p = rng.uniform(size=25) ** 2
            assert np.all(benjamini_hochberg_mask(p, 0.05) | ~bonferroni_mask(p, 0.05))

    def test_by_more_conservative_than_bh(self, rng):
        for _ in range(20):
            p = rng.uniform(size=25) ** 2
            assert np.all(benjamini_hochberg_mask(p, 0.05) | ~benjamini_yekutieli_mask(p, 0.05))

    def test_rejections_form_prefix_of_sorted(self, rng):
        p = rng.uniform(size=30)
        mask = benjamini_hochberg_mask(p, 0.2)
        rejected = np.sort(p[mask])
        accepted = np.sort(p[~mask])
        if rejected.size and accepted.size:
            assert rejected[-1] <= accepted[0]

    def test_empty_input(self):
        assert benjamini_hochberg_mask([], 0.05).size == 0

    def test_class_form(self, rng):
        p = rng.uniform(size=12)
        assert np.array_equal(
            BenjaminiHochberg(0.05).decide(p), benjamini_hochberg_mask(p, 0.05)
        )


class TestStorey:
    def test_pi0_near_one_under_global_null(self, rng):
        p = rng.uniform(size=5000)
        assert storey_pi0_estimate(p) == pytest.approx(1.0, abs=0.05)

    def test_pi0_small_with_many_effects(self):
        p = np.concatenate([np.full(80, 1e-6), np.linspace(0.01, 1, 20)])
        assert storey_pi0_estimate(p) < 0.3

    def test_adaptive_bh_at_least_as_powerful(self, rng):
        p = np.concatenate([rng.uniform(0, 1e-4, 40), rng.uniform(size=60)])
        plain = benjamini_hochberg_mask(p, 0.05).sum()
        adaptive = StoreyBH(0.05).decide(p).sum()
        assert adaptive >= plain

    def test_lambda_validation(self):
        with pytest.raises(InvalidParameterError):
            storey_pi0_estimate([0.5], lam=1.0)
