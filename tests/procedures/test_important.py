"""Theorem 1: important-discovery subsets preserve error control."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.procedures.base import Decision
from repro.procedures.fdr import benjamini_hochberg_mask
from repro.procedures.important import important_subset_fdr, select_important


def make_decisions(p_values, mask):
    return [
        Decision(index=i, p_value=float(p), level=0.05, rejected=bool(r))
        for i, (p, r) in enumerate(zip(p_values, mask))
    ]


class TestSelectImportant:
    def test_selector_keeps_only_discoveries(self):
        decisions = make_decisions([0.001, 0.9, 0.002], [True, False, True])
        chosen = select_important(decisions, selector=lambda d: d.index == 2)
        assert [d.index for d in chosen] == [2]

    def test_selector_never_returns_accepted(self):
        decisions = make_decisions([0.001, 0.9], [True, False])
        chosen = select_important(decisions, selector=lambda d: True)
        assert all(d.rejected for d in chosen)

    def test_fraction_selection_reproducible(self):
        decisions = make_decisions([0.001] * 20, [True] * 20)
        a = select_important(decisions, fraction=0.5, seed=3)
        b = select_important(decisions, fraction=0.5, seed=3)
        assert [d.index for d in a] == [d.index for d in b]

    def test_fraction_one_keeps_all(self):
        decisions = make_decisions([0.001] * 10, [True] * 10)
        assert len(select_important(decisions, fraction=1.0, seed=0)) == 10

    def test_requires_exactly_one_mode(self):
        decisions = make_decisions([0.001], [True])
        with pytest.raises(InvalidParameterError):
            select_important(decisions)
        with pytest.raises(InvalidParameterError):
            select_important(decisions, selector=lambda d: True, fraction=0.5)

    def test_fraction_validation(self):
        decisions = make_decisions([0.001], [True])
        with pytest.raises(InvalidParameterError):
            select_important(decisions, fraction=1.5)


class TestTheoremOneEmpirically:
    def test_subset_fdr_matches_full_fdr_under_bh(self, rng):
        """E[|V ∩ R'|/|R'|] stays at/below alpha for random subsets."""
        alpha = 0.1
        subset_ratios = []
        for _ in range(300):
            m = 60
            null = np.ones(m, dtype=bool)
            null[rng.choice(m, size=20, replace=False)] = False
            p = np.where(
                null, rng.uniform(size=m), rng.beta(0.08, 1.0, size=m)
            )
            mask = benjamini_hochberg_mask(p, alpha)
            subset_ratios.append(
                important_subset_fdr(mask, null, subset_fraction=0.4, n_draws=40,
                                     seed=rng.integers(2**31))
            )
        assert np.mean(subset_ratios) <= alpha + 0.02

    def test_empty_discovery_set_is_zero(self):
        assert important_subset_fdr([False, False], [True, True], 0.5) == 0.0

    def test_full_subset_equals_plain_fdp(self):
        rejected = np.array([True, True, True, False])
        nulls = np.array([True, False, False, False])
        value = important_subset_fdr(rejected, nulls, subset_fraction=1.0, n_draws=5)
        assert value == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            important_subset_fdr([True], [True, False], 0.5)
        with pytest.raises(InvalidParameterError):
            important_subset_fdr([True], [True], 0.0)
        with pytest.raises(InvalidParameterError):
            important_subset_fdr([True], [True], 0.5, n_draws=0)
