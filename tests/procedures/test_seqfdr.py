"""Sequential FDR (ForwardStop/StrongStop): order sensitivity and control."""

import numpy as np

from repro.procedures.seqfdr import ForwardStop, StrongStop, forward_stop_k, strong_stop_k


class TestForwardStop:
    def test_rejects_prefix_only(self):
        p = [1e-6, 1e-6, 0.9, 1e-6]
        mask = ForwardStop(0.05).decide(np.asarray(p))
        # The high p at position 3 blocks position 4 from being reachable
        # unless the running mean recovers; with these values k=2.
        assert mask.tolist() == [True, True, False, False]

    def test_mask_is_always_a_prefix(self, rng):
        for _ in range(25):
            p = rng.uniform(size=30)
            mask = ForwardStop(0.1).decide(p)
            k = mask.sum()
            assert np.all(mask[:k]) and not np.any(mask[k:])

    def test_order_sensitivity(self):
        """The Sec. 4.3 critique: an early high p-value hurts later low ones."""
        good_first = [1e-8, 1e-8, 1e-8, 0.99]
        bad_first = [0.99, 1e-8, 1e-8, 1e-8]
        k_good = forward_stop_k(good_first, 0.05)
        k_bad = forward_stop_k(bad_first, 0.05)
        assert k_good == 3
        assert k_bad == 0

    def test_all_tiny_rejects_all(self):
        assert forward_stop_k([1e-9] * 10, 0.05) == 10

    def test_all_large_rejects_none(self):
        assert forward_stop_k([0.8] * 10, 0.05) == 0

    def test_p_equal_one_no_overflow(self):
        k = forward_stop_k([1.0, 1.0], 0.05)
        assert k == 0

    def test_empty_stream(self):
        assert forward_stop_k([], 0.05) == 0

    def test_fdr_control_under_global_null(self, rng):
        """Average FDR (= P(any rejection) here) stays near alpha."""
        rejections = 0
        reps = 400
        for _ in range(reps):
            p = rng.uniform(size=50)
            if forward_stop_k(p, 0.05) > 0:
                rejections += 1
        assert rejections / reps < 0.09


class TestStrongStop:
    def test_mask_is_always_a_prefix(self, rng):
        for _ in range(25):
            p = rng.uniform(size=30)
            mask = StrongStop(0.1).decide(p)
            k = mask.sum()
            assert np.all(mask[:k]) and not np.any(mask[k:])

    def test_more_conservative_than_forward_stop(self, rng):
        wins = 0
        for _ in range(50):
            p = np.sort(rng.uniform(size=20) ** 3)
            if strong_stop_k(p, 0.05) <= forward_stop_k(p, 0.05):
                wins += 1
        assert wins >= 45  # StrongStop controls FWER; almost always <=

    def test_rejects_strong_prefix(self):
        p = [1e-10, 1e-9, 1e-8, 0.9, 0.95]
        assert strong_stop_k(p, 0.05) >= 1

    def test_empty_stream(self):
        assert strong_stop_k([], 0.05) == 0

    def test_fwer_under_global_null(self, rng):
        rejections = 0
        reps = 400
        for _ in range(reps):
            p = rng.uniform(size=40)
            if strong_stop_k(p, 0.05) > 0:
                rejections += 1
        assert rejections / reps < 0.08
