"""The five investing rules: budget algebra and stateful behaviour."""

import pytest

from repro.errors import InvalidParameterError
from repro.procedures.alpha_investing.policies import (
    BestFootForward,
    BetaFarsighted,
    DeltaHopeful,
    EpsilonHybrid,
    GammaFixed,
    PsiSupport,
)
from repro.procedures.alpha_investing.wealth import WealthLedger


def fresh_ledger(alpha=0.05):
    return WealthLedger(alpha=alpha)


class TestBetaFarsighted:
    def test_budget_formula(self):
        ledger = fresh_ledger()
        policy = BetaFarsighted(beta=0.25)
        w = ledger.wealth
        spend = w * 0.75
        assert policy.desired_budget(ledger, 0, 1.0) == pytest.approx(
            min(0.05, spend / (1 + spend))
        )

    def test_acceptance_preserves_beta_fraction(self):
        """Investing Rule 1 line 7: W(j) = beta * W(j-1) when unclamped."""
        ledger = fresh_ledger()
        policy = BetaFarsighted(beta=0.5)
        for _ in range(10):
            before = ledger.wealth
            budget = policy.desired_budget(ledger, 0, 1.0)
            ledger.settle(budget, rejected=False)
            assert ledger.wealth == pytest.approx(0.5 * before, rel=1e-9)

    def test_thrifty_never_exhausts(self):
        ledger = fresh_ledger()
        policy = BetaFarsighted(beta=0.25)
        for _ in range(500):
            budget = policy.desired_budget(ledger, 0, 1.0)
            assert budget > 0
            assert ledger.can_afford(budget)
            ledger.settle(budget, rejected=False)
        assert ledger.wealth > 0

    def test_clamped_at_alpha(self):
        ledger = WealthLedger(alpha=0.01, eta=1.0)
        # Give the ledger lots of wealth via rejections.
        for _ in range(200):
            ledger.settle(0.001, rejected=True)
        policy = BetaFarsighted(beta=0.0)
        assert policy.desired_budget(ledger, 0, 1.0) == pytest.approx(0.01)

    def test_beta_validation(self):
        with pytest.raises(InvalidParameterError):
            BetaFarsighted(beta=1.0)
        with pytest.raises(InvalidParameterError):
            BetaFarsighted(beta=-0.1)

    def test_best_foot_forward_is_beta_zero(self):
        ledger = fresh_ledger()
        assert BestFootForward().desired_budget(ledger, 0, 1.0) == pytest.approx(
            BetaFarsighted(beta=0.0).desired_budget(ledger, 0, 1.0)
        )


class TestGammaFixed:
    def test_constant_budget(self):
        ledger = fresh_ledger()
        policy = GammaFixed(gamma=10.0)
        w0 = ledger.initial_wealth
        expected = w0 / (10.0 + w0)
        budgets = []
        for _ in range(5):
            b = policy.desired_budget(ledger, 0, 1.0)
            budgets.append(b)
            if ledger.can_afford(b):
                ledger.settle(b, rejected=False)
        assert all(b == pytest.approx(expected) for b in budgets)

    def test_acceptance_charges_w0_over_gamma(self):
        """Investing Rule 2 line 7: the charge is exactly W(0)/gamma."""
        ledger = fresh_ledger()
        policy = GammaFixed(gamma=10.0)
        before = ledger.wealth
        ledger.settle(policy.desired_budget(ledger, 0, 1.0), rejected=False)
        assert before - ledger.wealth == pytest.approx(ledger.initial_wealth / 10.0)

    def test_affords_about_gamma_tests_without_rejections(self):
        ledger = fresh_ledger()
        policy = GammaFixed(gamma=10.0)
        tests = 0
        while ledger.can_afford(policy.desired_budget(ledger, tests, 1.0)):
            ledger.settle(policy.desired_budget(ledger, tests, 1.0), rejected=False)
            tests += 1
            assert tests < 50
        assert tests == 10

    def test_gamma_validation(self):
        with pytest.raises(InvalidParameterError):
            GammaFixed(gamma=0.0)


class TestDeltaHopeful:
    def test_initial_budget_matches_gamma_form(self):
        ledger = fresh_ledger()
        policy = DeltaHopeful(delta=10.0)
        w0 = ledger.initial_wealth
        assert policy.desired_budget(ledger, 0, 1.0) == pytest.approx(
            min(0.05, w0 / (10.0 + w0))
        )

    def test_reinvests_after_rejection(self):
        """Investing Rule 3 lines 6-8: alpha* refreshed from W(k*)."""
        ledger = fresh_ledger()
        policy = DeltaHopeful(delta=10.0)
        b0 = policy.desired_budget(ledger, 0, 1.0)
        ledger.settle(b0, rejected=True)
        policy.record_outcome(ledger, 0, rejected=True)
        b1 = policy.desired_budget(ledger, 1, 1.0)
        w = ledger.wealth
        assert b1 == pytest.approx(min(0.05, w / (10.0 + w)))
        assert b1 > b0  # wealth grew, so the budget grows

    def test_budget_frozen_between_rejections(self):
        ledger = fresh_ledger()
        policy = DeltaHopeful(delta=10.0)
        b0 = policy.desired_budget(ledger, 0, 1.0)
        ledger.settle(b0, rejected=False)
        policy.record_outcome(ledger, 0, rejected=False)
        assert policy.desired_budget(ledger, 1, 1.0) == pytest.approx(b0)

    def test_reset_clears_state(self):
        ledger = fresh_ledger()
        policy = DeltaHopeful(delta=10.0)
        policy.desired_budget(ledger, 0, 1.0)
        ledger.settle(0.01, rejected=True)
        policy.record_outcome(ledger, 0, rejected=True)
        policy.reset()
        ledger.reset()
        w0 = ledger.initial_wealth
        assert policy.desired_budget(ledger, 0, 1.0) == pytest.approx(
            min(0.05, w0 / (10.0 + w0))
        )


class TestEpsilonHybrid:
    def test_starts_in_gamma_mode(self):
        ledger = fresh_ledger()
        policy = EpsilonHybrid(epsilon=0.5, gamma=10.0, delta=10.0)
        w0 = ledger.initial_wealth
        assert policy.desired_budget(ledger, 0, 1.0) == pytest.approx(w0 / (10.0 + w0))

    def test_switches_to_delta_mode_when_rejections_dominate(self):
        ledger = fresh_ledger()
        policy = EpsilonHybrid(epsilon=0.5, gamma=100.0, delta=5.0)
        # Record three rejections -> ratio 1.0 > 0.5 -> delta branch.
        for i in range(3):
            ledger.settle(0.001, rejected=True)
            policy.record_outcome(ledger, i, rejected=True)
        w_star = ledger.wealth
        assert policy.desired_budget(ledger, 3, 1.0) == pytest.approx(
            min(0.05, w_star / (5.0 + w_star))
        )

    def test_sliding_window_forgets_old_rejections(self):
        ledger = fresh_ledger()
        policy = EpsilonHybrid(epsilon=0.5, gamma=10.0, delta=10.0, window=2)
        ledger.settle(0.001, rejected=True)
        policy.record_outcome(ledger, 0, rejected=True)
        assert policy.rejection_ratio() == 1.0
        for i in (1, 2):
            ledger.settle(0.001, rejected=False)
            policy.record_outcome(ledger, i, rejected=False)
        assert policy.rejection_ratio() == 0.0  # window of 2 holds two accepts

    def test_unlimited_window_default(self):
        policy = EpsilonHybrid()
        assert policy.window is None

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            EpsilonHybrid(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            EpsilonHybrid(window=0)


class TestPsiSupport:
    def test_full_support_matches_gamma_fixed(self):
        ledger = fresh_ledger()
        psi = PsiSupport(psi=0.5, gamma=10.0)
        gamma = GammaFixed(gamma=10.0)
        assert psi.desired_budget(ledger, 0, 1.0) == pytest.approx(
            gamma.desired_budget(ledger, 0, 1.0)
        )

    def test_sqrt_scaling(self):
        ledger = fresh_ledger()
        policy = PsiSupport(psi=0.5, gamma=10.0)
        full = policy.desired_budget(ledger, 0, 1.0)
        quarter = policy.desired_budget(ledger, 0, 0.25)
        assert quarter == pytest.approx(full * 0.5)

    def test_psi_exponent(self):
        ledger = fresh_ledger()
        policy = PsiSupport(psi=2.0, gamma=10.0)
        full = policy.desired_budget(ledger, 0, 1.0)
        half = policy.desired_budget(ledger, 0, 0.5)
        assert half == pytest.approx(full * 0.25)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PsiSupport(psi=0.0)
        with pytest.raises(InvalidParameterError):
            PsiSupport(gamma=-1.0)
