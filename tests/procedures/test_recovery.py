"""Sec. 5.8 wealth recovery: BH revalidation of an exhausted stream."""

import pytest

from repro.errors import InvalidParameterError
from repro.exploration.predicate import Eq
from repro.exploration.session import ExplorationSession
from repro.procedures.recovery import CAVEAT, bh_revalidation, revalidate_session


class TestBHRevalidation:
    def test_regained_are_bh_only(self):
        p = [0.001, 0.002, 0.004, 0.9]
        streaming = [True, False, False, False]  # wealth ran out after #1
        report = bh_revalidation(p, streaming, alpha=0.05)
        assert report.bh_mask.tolist() == [True, True, True, False]
        assert report.regained == (1, 2)
        assert report.lost == ()

    def test_lost_are_streaming_only(self):
        p = [0.04, 0.9, 0.8, 0.7]
        streaming = [True, False, False, False]  # rejected at a generous alpha_j
        report = bh_revalidation(p, streaming, alpha=0.05)
        # BH threshold for the smallest of 4 is 0.0125 < 0.04.
        assert report.bh_mask.tolist() == [False, False, False, False]
        assert report.lost == (0,)
        assert report.regained == ()

    def test_caveat_always_attached(self):
        report = bh_revalidation([0.5], [False])
        assert report.caveat == CAVEAT
        assert "NOT" in report.summary()

    def test_alignment_validated(self):
        with pytest.raises(InvalidParameterError):
            bh_revalidation([0.1, 0.2], [True])

    def test_counts(self):
        report = bh_revalidation([1e-6, 1e-5, 0.9], [False, False, False])
        assert report.num_bh_discoveries == 2
        assert len(report.regained) == 2


class TestSessionRevalidation:
    def test_exhausted_session_regains_leads(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05,
                                     gamma=3.0)
        # Burn the wealth on independent (null) panels...
        for attr, n in (("workclass", 3), ("race", 3), ("native_region", 3)):
            for cat in census.categories(attr)[:n]:
                session.show("sex", where=Eq(attr, cat))
        assert session.is_exhausted
        # ...then meet a real effect the stream can no longer reject.
        blocked = session.show("salary_over_50k", where=Eq("education", "PhD"))
        assert blocked.hypothesis.decision.exhausted
        report = revalidate_session(session)
        last_index = len(session.active_hypotheses()) - 1
        assert last_index in report.regained

    def test_session_is_not_mutated(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)
        session.show("sex", where=Eq("salary_over_50k", "True"))
        before = [h.rejected for h in session.active_hypotheses()]
        revalidate_session(session)
        after = [h.rejected for h in session.active_hypotheses()]
        assert before == after

    def test_empty_session_rejected(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed")
        with pytest.raises(InvalidParameterError):
            revalidate_session(session)

    def test_alpha_override(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)
        session.show("sex", where=Eq("salary_over_50k", "True"))
        # The planted effect is astronomically significant; only an absurdly
        # strict level can refuse it — which proves the override is honored.
        strict = revalidate_session(session, alpha=1e-300)
        assert strict.num_bh_discoveries == 0
