"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exploration.dataset import Dataset
from repro.workloads.census import make_census


@pytest.fixture(scope="session")
def census() -> Dataset:
    """A small synthetic census shared across tests (8k rows, fixed seed)."""
    return make_census(8_000, seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def tiny_dataset() -> Dataset:
    """A hand-written 12-row dataset with known counts."""
    return Dataset(
        {
            "color": ["red", "red", "blue", "blue", "blue", "green",
                      "red", "blue", "green", "red", "blue", "red"],
            "size": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
            "flag": [True, False, True, False, True, False,
                     True, False, True, False, True, False],
        },
        categorical=["color", "flag"],
        name="tiny",
    )
