"""User-study workflow: generation contracts, execution, robustness."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads.user_study import StepKind, make_user_study_workflow


@pytest.fixture(scope="module")
def workflow(census):
    return make_user_study_workflow(census, n_steps=115, seed=42)


class TestGeneration:
    def test_exact_step_count(self, workflow):
        assert len(workflow) == 115

    def test_deterministic_given_seed(self, census):
        a = make_user_study_workflow(census, n_steps=30, seed=1)
        b = make_user_study_workflow(census, n_steps=30, seed=1)
        assert [s.describe() for s in a.steps] == [s.describe() for s in b.steps]

    def test_distinct_steps(self, workflow):
        keys = [f"{s.kind.value}::{s.describe()}" for s in workflow.steps]
        assert len(set(keys)) == len(keys)

    def test_kind_mix_mostly_distribution_comparisons(self, workflow):
        kinds = [s.kind for s in workflow.steps]
        rule_like = sum(1 for k in kinds if k in (StepKind.RULE2, StepKind.RULE3))
        assert rule_like / len(kinds) > 0.7  # "mostly comparing histograms"
        assert any(k is StepKind.MEANS for k in kinds)

    def test_filter_never_references_target(self, workflow):
        for step in workflow.steps:
            assert step.target_attribute not in step.predicate.columns()

    def test_means_steps_have_numeric_targets(self, workflow, census):
        for step in workflow.steps:
            if step.kind is StepKind.MEANS:
                assert not census.is_categorical(step.target_attribute)

    def test_bin_edges_cover_numeric_targets(self, workflow, census):
        for step in workflow.steps:
            if not census.is_categorical(step.target_attribute):
                assert step.target_attribute in workflow.bin_edges

    def test_validation(self, census):
        with pytest.raises(InvalidParameterError):
            make_user_study_workflow(census, n_steps=0)
        with pytest.raises(InvalidParameterError):
            make_user_study_workflow(census, rule2_weight=-1.0)


class TestExecution:
    def test_full_run_produces_valid_pvalues(self, workflow, census):
        outcomes = workflow.run(census)
        assert len(outcomes) == 115
        p = np.array([o.p_value for o in outcomes])
        assert np.all((p >= 0) & (p <= 1))

    def test_support_fractions_in_range(self, workflow, census):
        outcomes = workflow.run(census)
        fracs = np.array([o.support_fraction for o in outcomes])
        assert np.all((fracs > 0) & (fracs <= 1))

    def test_run_on_subsample_tolerates_thin_filters(self, workflow, census):
        tiny = census.sample_fraction(0.02, seed=3)
        outcomes = workflow.run(tiny)
        assert len(outcomes) == 115
        for o in outcomes:
            if o.degenerate:
                assert o.p_value == pytest.approx(1.0)

    def test_p_values_helper_matches_run(self, workflow, census):
        sample = census.sample_fraction(0.2, seed=4)
        direct = workflow.p_values(sample)
        via_run = np.array([o.p_value for o in workflow.run(sample)])
        np.testing.assert_array_equal(direct, via_run)

    def test_fixed_order_is_stable_across_datasets(self, workflow, census):
        """Same steps in the same order regardless of the evaluated sample."""
        sample = census.sample_fraction(0.5, seed=5)
        a = [o.step.describe() for o in workflow.run(census)]
        b = [o.step.describe() for o in workflow.run(sample)]
        assert a == b
