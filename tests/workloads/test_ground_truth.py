"""Ground-truth labelling: Bonferroni on full data (Sec. 7.3)."""

import numpy as np
import pytest

from repro.workloads.ground_truth import label_ground_truth
from repro.workloads.user_study import make_user_study_workflow


@pytest.fixture(scope="module")
def labelled(census):
    workflow = make_user_study_workflow(census, n_steps=60, seed=42)
    return label_ground_truth(workflow, census, alpha=0.05)


class TestLabelling:
    def test_masks_aligned(self, labelled):
        assert labelled.null_mask.shape == (60,)
        assert labelled.full_p_values.shape == (60,)
        assert len(labelled) == 60

    def test_some_alternatives_found_on_census(self, labelled):
        # The planted dependencies must surface even under Bonferroni.
        assert labelled.num_alternatives > 0
        assert labelled.num_alternatives < 60

    def test_labels_match_bonferroni_rule(self, labelled):
        threshold = 0.05 / 60
        expected_significant = labelled.full_p_values <= threshold
        np.testing.assert_array_equal(~labelled.null_mask, expected_significant)

    def test_randomized_census_all_null(self, census):
        workflow = make_user_study_workflow(census, n_steps=40, seed=43)
        permuted = census.permute_columns(seed=8)
        labelled = label_ground_truth(workflow, permuted, alpha=0.05)
        assert labelled.num_alternatives == 0

    def test_alternatives_are_planted_pairs(self, census, labelled):
        """Steps labelled significant should involve dependent attributes."""
        from repro.workloads.census import INDEPENDENT_ATTRIBUTES

        for step, is_null in zip(labelled.workflow.steps, labelled.null_mask):
            if is_null:
                continue
            involved = {step.target_attribute} | set(step.predicate.columns())
            # A truly-significant step cannot involve ONLY independent attrs.
            assert not involved.issubset(set(INDEPENDENT_ATTRIBUTES))
