"""Synthetic census: schema, planted dependencies, independence controls."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.stats.tests import chi_square_independence, t_test_two_sample
from repro.workloads.census import (
    CENSUS_CATEGORICAL,
    CENSUS_NUMERIC,
    DEPENDENT_PAIRS,
    INDEPENDENT_ATTRIBUTES,
    make_census,
)


def contingency(ds, a, b):
    """Contingency table between two categorical columns."""
    rows = []
    for va in ds.categories(a):
        mask = ds.values(a) == va
        vals = ds.values(b, mask)
        rows.append([(vals == vb).sum() for vb in ds.categories(b)])
    return rows


class TestSchema:
    def test_columns_present(self, census):
        for name in CENSUS_CATEGORICAL + CENSUS_NUMERIC:
            assert name in census.column_names

    def test_categorical_typing(self, census):
        for name in CENSUS_CATEGORICAL:
            assert census.is_categorical(name)
        for name in CENSUS_NUMERIC:
            assert not census.is_categorical(name)

    def test_row_count(self):
        assert make_census(500, seed=1).n_rows == 500

    def test_reproducible(self):
        a = make_census(1000, seed=9)
        b = make_census(1000, seed=9)
        np.testing.assert_array_equal(a.values("age"), b.values("age"))
        np.testing.assert_array_equal(a.values("education"), b.values("education"))

    def test_minimum_rows_enforced(self):
        with pytest.raises(InvalidParameterError):
            make_census(50)

    def test_plausible_ranges(self, census):
        age = census.values("age")
        hours = census.values("hours_per_week")
        assert age.min() >= 18 and age.max() <= 90
        assert hours.min() >= 5 and hours.max() <= 80


class TestPlantedDependencies:
    @pytest.mark.parametrize(
        "a,b",
        [p for p in DEPENDENT_PAIRS if p[0] in CENSUS_CATEGORICAL and p[1] in CENSUS_CATEGORICAL],
    )
    def test_categorical_dependencies_significant(self, census, a, b):
        result = chi_square_independence(contingency(census, a, b))
        assert result.p_value < 1e-4, f"{a} -> {b} should be dependent"

    def test_age_marital_dependency(self, census):
        married = census.values("age", census.values("marital_status") == "Married")
        never = census.values("age", census.values("marital_status") == "Never Married")
        assert t_test_two_sample(married, never).p_value < 1e-10
        assert married.mean() > never.mean()

    def test_hours_salary_dependency(self, census):
        high = census.values("hours_per_week", census.values("salary_over_50k") == "True")
        low = census.values("hours_per_week", census.values("salary_over_50k") == "False")
        assert t_test_two_sample(high, low).p_value < 1e-6
        assert high.mean() > low.mean()

    def test_education_raises_salary(self, census):
        edu = census.values("education")
        sal = census.values("salary_over_50k") == "True"
        rate_phd = sal[edu == "PhD"].mean()
        rate_hs = sal[edu == "HS"].mean()
        assert rate_phd > rate_hs + 0.2


class TestIndependenceControls:
    @pytest.mark.parametrize("attr", INDEPENDENT_ATTRIBUTES)
    def test_independent_of_salary(self, census, attr):
        result = chi_square_independence(contingency(census, attr, "salary_over_50k"))
        assert result.p_value > 0.001, f"{attr} should be independent of salary"

    def test_race_independent_of_education(self, census):
        result = chi_square_independence(contingency(census, "race", "education"))
        assert result.p_value > 0.001
