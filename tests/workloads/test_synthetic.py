"""Synthetic Exp.1 streams: composition, calibration, reproducibility."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads.synthetic import (
    PAPER_EFFECT_SIZES,
    TwoSampleStreamGenerator,
    ZStreamGenerator,
)


class TestZStreamComposition:
    def test_null_count_matches_proportion(self):
        stream = ZStreamGenerator(m=64, null_proportion=0.75).sample(0)
        assert stream.null_mask.sum() == 48
        assert stream.num_alternatives == 16

    def test_complete_null(self):
        stream = ZStreamGenerator(m=32, null_proportion=1.0).sample(0)
        assert stream.null_mask.all()
        assert stream.num_alternatives == 0

    def test_null_positions_vary_across_draws(self):
        gen = ZStreamGenerator(m=64, null_proportion=0.5)
        a = gen.sample(1).null_mask
        b = gen.sample(2).null_mask
        assert not np.array_equal(a, b)

    def test_effects_cycle_through_paper_levels(self):
        stream = ZStreamGenerator(m=100, null_proportion=0.0).sample(0)
        effects = np.array([h.effect for h in stream.instances])
        values, counts = np.unique(effects, return_counts=True)
        assert set(values) == set(PAPER_EFFECT_SIZES)
        assert counts.max() - counts.min() <= 1  # equal proportions

    def test_reproducible_given_seed(self):
        gen = ZStreamGenerator(m=20, null_proportion=0.5)
        a = gen.sample(7).p_values
        b = gen.sample(7).p_values
        np.testing.assert_array_equal(a, b)

    def test_length(self):
        assert len(ZStreamGenerator(m=10, null_proportion=0.5).sample(0)) == 10


class TestZStreamCalibration:
    def test_null_p_values_are_uniform(self):
        gen = ZStreamGenerator(m=2000, null_proportion=1.0)
        p = gen.sample(3).p_values
        # Kolmogorov-Smirnov-ish coarse check on quartiles.
        for q in (0.25, 0.5, 0.75):
            assert np.mean(p <= q) == pytest.approx(q, abs=0.03)

    def test_alternative_p_values_are_small(self):
        gen = ZStreamGenerator(m=400, null_proportion=0.0)
        p = gen.sample(4).p_values
        assert np.median(p) < 0.01

    def test_sample_fraction_shrinks_evidence(self):
        full = ZStreamGenerator(m=500, null_proportion=0.0, sample_fraction=1.0)
        tiny = ZStreamGenerator(m=500, null_proportion=0.0, sample_fraction=0.05)
        p_full = full.sample(5).p_values
        p_tiny = tiny.sample(5).p_values
        assert np.median(p_tiny) > np.median(p_full)

    def test_sample_fraction_recorded_as_support(self):
        stream = ZStreamGenerator(m=10, null_proportion=0.5, sample_fraction=0.3).sample(0)
        assert np.all(stream.support_fractions == 0.3)

    def test_heterogeneous_support_range(self):
        gen = ZStreamGenerator(m=200, null_proportion=0.5, support_range=(0.1, 0.9))
        stream = gen.sample(6)
        fracs = stream.support_fractions
        assert fracs.min() >= 0.1 and fracs.max() <= 0.9
        assert np.std(fracs) > 0.1


class TestZStreamValidation:
    @pytest.mark.parametrize("kwargs", [
        {"m": 0, "null_proportion": 0.5},
        {"m": 10, "null_proportion": -0.1},
        {"m": 10, "null_proportion": 1.1},
        {"m": 10, "null_proportion": 0.5, "sample_fraction": 0.0},
        {"m": 10, "null_proportion": 0.5, "effect_sizes": ()},
        {"m": 10, "null_proportion": 0.5, "support_range": (0.0, 0.5)},
        {"m": 10, "null_proportion": 0.5, "support_range": (0.9, 0.1)},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ZStreamGenerator(**kwargs)


class TestTwoSampleStream:
    def test_composition(self):
        stream = TwoSampleStreamGenerator(m=20, null_proportion=0.5).sample(0)
        assert len(stream) == 20
        assert stream.null_mask.sum() == 10

    def test_data_level_matches_statistic_level_power(self):
        """The Welch-test stream discovers alternatives at a rate close to
        the z-stream with the same non-centrality."""
        z_gen = ZStreamGenerator(m=300, null_proportion=0.0)
        t_gen = TwoSampleStreamGenerator(m=300, null_proportion=0.0, n_per_group=200)
        z_rate = np.mean(z_gen.sample(1).p_values <= 0.05)
        t_rate = np.mean(t_gen.sample(1).p_values <= 0.05)
        assert t_rate == pytest.approx(z_rate, abs=0.08)

    def test_null_uniformity(self):
        stream = TwoSampleStreamGenerator(
            m=400, null_proportion=1.0, n_per_group=50
        ).sample(2)
        assert np.mean(stream.p_values <= 0.05) == pytest.approx(0.05, abs=0.03)

    def test_sample_fraction_floor(self):
        gen = TwoSampleStreamGenerator(
            m=5, null_proportion=1.0, n_per_group=10, sample_fraction=0.01
        )
        stream = gen.sample(0)
        # Sub-sample cannot go below 2 per group.
        assert stream.support_fractions[0] == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TwoSampleStreamGenerator(m=5, null_proportion=0.5, n_per_group=1)
