"""Seed handling and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(as_generator(ss), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        children = spawn(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_reproducible(self):
        a = [c.random(3).tolist() for c in spawn(5, 2)]
        b = [c.random(3).tolist() for c in spawn(5, 2)]
        assert a == b

    def test_spawn_from_generator_advances_parent(self):
        rng = np.random.default_rng(1)
        children = spawn(rng, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_zero_count(self):
        assert spawn(0, 0) == []


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.InvalidParameterError,
        errors.InsufficientDataError,
        errors.WealthExhaustedError,
        errors.ProcedureStateError,
        errors.UnknownProcedureError,
        errors.SchemaError,
        errors.PredicateError,
        errors.SessionError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_value_error_compatibility(self):
        # Callers using plain ValueError still catch parameter errors.
        assert issubclass(errors.InvalidParameterError, ValueError)
        assert issubclass(errors.SchemaError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(errors.UnknownProcedureError, KeyError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SessionError("boom")
