"""Figure results and table rendering."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.metrics import MetricSummary
from repro.experiments.reporting import (
    FigureResult,
    PanelCell,
    render_figure,
    render_panel_table,
)


def summary(d=1.0, f=0.05, p=0.5):
    return MetricSummary(
        n_runs=10, avg_discoveries=d, ci_discoveries=0.1,
        avg_fdr=f, ci_fdr=0.01, avg_power=p, ci_power=0.02,
    )


@pytest.fixture()
def figure():
    cells = []
    for panel in ("75% Null", "100% Null"):
        for x in (4.0, 8.0):
            for proc in ("pcer", "bhfdr"):
                p = float("nan") if panel == "100% Null" else 0.5
                cells.append(PanelCell(panel, x, proc, summary(p=p)))
    return FigureResult(figure="Figure T", x_label="m", cells=tuple(cells))


class TestFigureResult:
    def test_panels_in_order(self, figure):
        assert figure.panels() == ["75% Null", "100% Null"]

    def test_procedures_in_order(self, figure):
        assert figure.procedures() == ["pcer", "bhfdr"]

    def test_xs_sorted(self, figure):
        assert figure.xs("75% Null") == [4.0, 8.0]

    def test_get_cell(self, figure):
        assert figure.get("75% Null", 4.0, "pcer").avg_fdr == 0.05

    def test_get_missing_cell(self, figure):
        with pytest.raises(InvalidParameterError):
            figure.get("75% Null", 99.0, "pcer")


class TestRendering:
    def test_panel_table_contains_all_cells(self, figure):
        text = render_panel_table(figure, "75% Null", "fdr")
        assert "pcer" in text and "bhfdr" in text
        assert text.count("0.050±0.010") == 4

    def test_unknown_metric_rejected(self, figure):
        with pytest.raises(InvalidParameterError):
            render_panel_table(figure, "75% Null", "accuracy")

    def test_render_figure_skips_all_nan_power_panels(self, figure):
        text = render_figure(figure)
        assert "75% Null: Avg. Power" in text
        assert "100% Null: Avg. Power" not in text

    def test_percentage_x_formatting(self):
        cells = (PanelCell("P", 0.3, "pcer", summary()),)
        fig = FigureResult("F", "sample size", cells)
        text = render_panel_table(fig, "P", "fdr")
        assert "30%" in text
