"""Sec. 1 motivating arithmetic and Sec. 4.1 hold-out analysis."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.holdout import holdout_analysis, simulate_holdout
from repro.experiments.motivating import (
    expected_discoveries,
    false_discovery_inflation,
    simulate_motivating_example,
)


class TestMotivatingArithmetic:
    def test_paper_numbers(self):
        exp = expected_discoveries(m=100, true_alternatives=10, power=0.8, alpha=0.05)
        assert exp.expected_discoveries == pytest.approx(12.5)
        assert exp.expected_false_discoveries == pytest.approx(4.5)
        assert exp.bogus_fraction == pytest.approx(0.36)

    def test_inflation_paper_values(self):
        assert false_discovery_inflation(2) == pytest.approx(0.0975, abs=5e-4)
        assert false_discovery_inflation(4) == pytest.approx(0.1855, abs=5e-4)

    def test_inflation_edge_cases(self):
        assert false_discovery_inflation(0) == 0.0
        assert false_discovery_inflation(1) == pytest.approx(0.05)
        with pytest.raises(InvalidParameterError):
            false_discovery_inflation(-1)

    def test_alternatives_bounded_by_m(self):
        with pytest.raises(InvalidParameterError):
            expected_discoveries(m=5, true_alternatives=6)

    def test_simulation_matches_closed_form(self):
        sim = simulate_motivating_example(n_reps=600, seed=11)
        assert sim.avg_discoveries == pytest.approx(12.5, abs=0.5)
        assert sim.avg_fdr == pytest.approx(0.36, abs=0.04)


class TestHoldoutAnalysis:
    def test_paper_numbers(self):
        a = holdout_analysis()
        assert a.power_full == pytest.approx(0.99, abs=0.005)
        assert a.power_half == pytest.approx(0.87, abs=0.01)
        assert a.power_holdout == pytest.approx(0.76, abs=0.01)
        assert a.type1_holdout == pytest.approx(0.0025)
        assert a.inflation_25_tests == pytest.approx(0.0607, abs=1e-3)

    def test_power_loss_positive(self):
        assert holdout_analysis().power_loss() > 0.2

    def test_simulated_power_matches_closed_form(self):
        sim = simulate_holdout(n_reps=500, seed=7)
        analysis = holdout_analysis()
        assert sim["full"] == pytest.approx(analysis.power_full, abs=0.03)
        assert sim["holdout"] == pytest.approx(analysis.power_holdout, abs=0.05)

    def test_simulated_type1_shrinks_under_holdout(self):
        sim = simulate_holdout(n_reps=800, under_null=True, seed=13)
        assert sim["full"] == pytest.approx(0.05, abs=0.03)
        assert sim["holdout"] <= 0.02

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            simulate_holdout(n_reps=0)
