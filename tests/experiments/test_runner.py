"""Replicated runner: shared streams, seed handling, spec validation."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments.runner import ProcedureSpec, StreamSample, run_comparison


def uniform_stream_factory(m=30):
    def factory(rng: np.random.Generator) -> StreamSample:
        return StreamSample(
            p_values=rng.uniform(size=m),
            null_mask=np.ones(m, dtype=bool),
            support_fractions=np.ones(m),
        )

    return factory


class TestRunComparison:
    def test_returns_summary_per_spec(self):
        specs = [ProcedureSpec("pcer"), ProcedureSpec("bonferroni")]
        result = run_comparison(specs, uniform_stream_factory(), n_reps=20, seed=0)
        assert set(result) == {"pcer", "bonferroni"}
        assert result["pcer"].n_runs == 20

    def test_reproducible_given_seed(self):
        specs = [ProcedureSpec("gamma-fixed")]
        a = run_comparison(specs, uniform_stream_factory(), n_reps=15, seed=3)
        b = run_comparison(specs, uniform_stream_factory(), n_reps=15, seed=3)
        assert a["gamma-fixed"].avg_discoveries == b["gamma-fixed"].avg_discoveries

    def test_procedures_see_identical_streams(self):
        """PCER must reject a superset of Bonferroni on every stream; that
        only holds deterministically if both see the same draws."""
        specs = [ProcedureSpec("pcer"), ProcedureSpec("bonferroni")]
        result = run_comparison(specs, uniform_stream_factory(50), n_reps=40, seed=1)
        assert result["pcer"].avg_discoveries >= result["bonferroni"].avg_discoveries

    def test_custom_labels(self):
        specs = [
            ProcedureSpec("gamma-fixed", kwargs={"gamma": 5.0}, label="gamma=5"),
            ProcedureSpec("gamma-fixed", kwargs={"gamma": 50.0}, label="gamma=50"),
        ]
        result = run_comparison(specs, uniform_stream_factory(), n_reps=5, seed=2)
        assert set(result) == {"gamma=5", "gamma=50"}

    def test_duplicate_labels_rejected(self):
        specs = [ProcedureSpec("pcer"), ProcedureSpec("pcer")]
        with pytest.raises(InvalidParameterError):
            run_comparison(specs, uniform_stream_factory(), n_reps=2, seed=0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_comparison([], uniform_stream_factory(), n_reps=5)
        with pytest.raises(InvalidParameterError):
            run_comparison([ProcedureSpec("pcer")], uniform_stream_factory(), n_reps=0)

    def test_stream_sample_alignment_validated(self):
        with pytest.raises(InvalidParameterError):
            StreamSample(
                p_values=np.array([0.5]),
                null_mask=np.array([True, False]),
                support_fractions=np.array([1.0]),
            )

    def test_spec_build_forwards_kwargs(self):
        spec = ProcedureSpec("epsilon-hybrid", alpha=0.1, kwargs={"window": 5})
        proc = spec.build()
        assert proc.alpha == 0.1
        assert proc.policy.window == 5
