"""Metrics: counting, FDR/power conventions, CI arithmetic."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments.metrics import (
    MetricSummary,
    RunMetrics,
    evaluate_mask,
    summarize_runs,
)


class TestEvaluateMask:
    def test_counts(self):
        rejected = [True, True, False, True, False]
        nulls = [True, False, False, False, True]
        m = evaluate_mask(rejected, nulls)
        assert m.discoveries == 3
        assert m.false_discoveries == 1
        assert m.true_discoveries == 2
        assert m.num_alternatives == 3

    def test_fdr_convention_zero_over_zero(self):
        m = evaluate_mask([False, False], [True, True])
        assert m.fdr == 0.0

    def test_fdr_value(self):
        m = evaluate_mask([True, True], [True, False])
        assert m.fdr == pytest.approx(0.5)

    def test_power_nan_under_complete_null(self):
        m = evaluate_mask([True, False], [True, True])
        assert math.isnan(m.power)

    def test_power_value(self):
        m = evaluate_mask([True, False, True], [False, False, True])
        assert m.power == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            evaluate_mask([True], [True, False])


class TestSummarize:
    def test_means_and_cis(self):
        runs = [
            RunMetrics(discoveries=2, false_discoveries=1, true_discoveries=1,
                       num_alternatives=4),
            RunMetrics(discoveries=4, false_discoveries=0, true_discoveries=4,
                       num_alternatives=4),
        ]
        s = summarize_runs(runs)
        assert s.n_runs == 2
        assert s.avg_discoveries == pytest.approx(3.0)
        assert s.avg_fdr == pytest.approx(0.25)
        assert s.avg_power == pytest.approx((0.25 + 1.0) / 2)
        expected_ci = 1.96 * np.std([2, 4], ddof=1) / np.sqrt(2)
        assert s.ci_discoveries == pytest.approx(expected_ci)

    def test_power_skips_complete_null_runs(self):
        runs = [
            RunMetrics(1, 1, 0, num_alternatives=0),
            RunMetrics(2, 0, 2, num_alternatives=2),
        ]
        s = summarize_runs(runs)
        assert s.avg_power == pytest.approx(1.0)

    def test_all_null_runs_power_nan(self):
        runs = [RunMetrics(1, 1, 0, num_alternatives=0)]
        s = summarize_runs(runs)
        assert math.isnan(s.avg_power)

    def test_single_run_ci_nan(self):
        s = summarize_runs([RunMetrics(1, 0, 1, 2)])
        assert math.isnan(s.ci_discoveries)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            summarize_runs([])


class TestFormatting:
    def test_format_cell(self):
        s = MetricSummary(
            n_runs=10, avg_discoveries=3.14159, ci_discoveries=0.5,
            avg_fdr=0.0423, ci_fdr=0.01, avg_power=float("nan"), ci_power=float("nan"),
        )
        assert s.format_cell("discoveries") == "3.142±0.500"
        assert s.format_cell("fdr", digits=2) == "0.04±0.01"
        assert s.format_cell("power") == "-"
