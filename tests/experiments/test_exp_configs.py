"""Reduced-repetition runs of every figure configuration (structure checks).

Qualitative *shape* assertions live in tests/integration/test_figure_shapes.py;
these tests only verify that each experiment produces a complete, well-formed
FigureResult quickly.
"""

import pytest

from repro.experiments import (
    DEFAULT_INCREMENTAL_PROCEDURES,
    render_figure,
    run_exp1a,
    run_exp1b,
    run_exp1c,
    run_exp2,
)


@pytest.fixture(scope="module")
def exp1a():
    return run_exp1a(m_values=(4, 16), null_proportions=(0.75, 1.0), n_reps=30, seed=1)


class TestExp1a:
    def test_panels(self, exp1a):
        assert exp1a.panels() == ["75% Null", "100% Null"]

    def test_procedures(self, exp1a):
        assert exp1a.procedures() == ["pcer", "bonferroni", "bhfdr"]

    def test_complete_grid(self, exp1a):
        assert len(exp1a.cells) == 2 * 2 * 3

    def test_renders(self, exp1a):
        text = render_figure(exp1a)
        assert "Figure 3" in text
        assert "100% Null: Avg. Power" not in text  # nan panel skipped


class TestExp1b:
    def test_structure(self):
        result = run_exp1b(m_values=(8,), null_proportions=(0.25,), n_reps=20, seed=2)
        assert result.procedures() == list(DEFAULT_INCREMENTAL_PROCEDURES)
        assert len(result.cells) == len(DEFAULT_INCREMENTAL_PROCEDURES)

    def test_custom_procedures(self):
        result = run_exp1b(
            m_values=(4,), null_proportions=(1.0,), procedures=("pcer", "gamma-fixed"),
            n_reps=10, seed=3,
        )
        assert result.procedures() == ["pcer", "gamma-fixed"]


class TestExp1c:
    def test_x_axis_is_sample_fraction(self):
        result = run_exp1c(
            sample_fractions=(0.1, 0.9), null_proportions=(0.25,), n_reps=15, seed=4
        )
        assert result.xs("25% Null") == [0.1, 0.9]
        assert result.x_label == "sample size"


class TestExp2:
    @pytest.fixture(scope="class")
    def exp2(self):
        return run_exp2(
            sample_fractions=(0.3, 0.7),
            n_reps=4,
            n_rows=5_000,
            n_steps=40,
            seed=5,
        )

    def test_panels(self, exp2):
        assert exp2.panels() == ["Census", "Randomized Census"]

    def test_complete_grid(self, exp2):
        assert len(exp2.cells) == 2 * 2 * len(DEFAULT_INCREMENTAL_PROCEDURES)

    def test_randomized_power_is_nan(self, exp2):
        import math

        s = exp2.get("Randomized Census", 0.3, "gamma-fixed")
        assert math.isnan(s.avg_power)

    def test_census_panel_has_power(self, exp2):
        import math

        s = exp2.get("Census", 0.7, "gamma-fixed")
        assert not math.isnan(s.avg_power)

    def test_skip_randomized(self):
        result = run_exp2(
            sample_fractions=(0.5,), n_reps=2, n_rows=3_000, n_steps=20,
            include_randomized=False, seed=6,
        )
        assert result.panels() == ["Census"]
