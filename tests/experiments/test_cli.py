"""CLI: parsing, command dispatch, output sanity."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp_flags(self):
        args = build_parser().parse_args(["exp1a", "--reps", "50", "--alpha", "0.1"])
        assert args.command == "exp1a"
        assert args.reps == 50
        assert args.alpha == 0.1

    def test_exp2_specific_flags(self):
        args = build_parser().parse_args(
            ["exp2", "--rows", "5000", "--steps", "40", "--no-randomized"]
        )
        assert args.rows == 5000
        assert args.no_randomized

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--rows", "5000", "--max-sessions", "8"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.rows == 5000
        assert args.max_sessions == 8
        assert args.host == "127.0.0.1"


class TestCommands:
    def test_motivating(self, capsys):
        assert main(["motivating", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "12.50" in out
        assert "0.098" in out

    def test_holdout(self, capsys):
        assert main(["holdout", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "0.989" in out
        assert "0.764" in out

    def test_exp1a_quick(self, capsys):
        assert main(["exp1a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "bonferroni" in out

    def test_seed_override(self, capsys):
        assert main(["exp1a", "--quick", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["exp1a", "--quick", "--seed", "9"]) == 0
        second = capsys.readouterr().out
        assert first == second
