"""Manager-level crash recovery: rebuild sessions by WAL replay.

These tests drive :class:`SessionManager` with a store attached, then
simulate a crash by building a *fresh* manager over the same store (the
old one is simply abandoned — exactly what SIGKILL leaves behind) and
assert the rebuilt sessions are byte-identical to the originals:
decision logs, wealth trajectories, hypothesis-stream ids, tombstones
and idempotency responses all survive.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SessionError, SessionEvictedError, StoreError
from repro.exploration.predicate import Eq
from repro.service import SessionManager
from repro.store import MemorySessionStore

WHERE = Eq("workclass", "Government")


@pytest.fixture()
def store():
    return MemorySessionStore()


@pytest.fixture()
def manager(census, store):
    m = SessionManager(store=store, snapshot_every=3)
    m.register_dataset(census, name="census")
    return m


def _fresh_manager(census, store, **kwargs) -> SessionManager:
    m = SessionManager(store=store, **kwargs)
    m.register_dataset(census, name="census")
    return m


def _explore(manager, sid) -> None:
    """A small mixed workload: shows, a star, a rule-3 override."""
    h1 = manager.show(sid, "education", where=WHERE).hypothesis.hypothesis_id
    manager.show(sid, "age", where=Eq("sex", "Female"))
    manager.star(sid, h1)
    # the second `age` panel is a two-panel rule-3 comparison —
    # the only hypothesis kind override_with_means accepts
    h3 = manager.show(sid, "age", where=~Eq("sex", "Female"))
    manager.override_with_means(sid, h3.hypothesis.hypothesis_id)
    manager.unstar(sid, h1)


class TestRecoverSession:
    def test_crash_then_recover_byte_identical_log(self, census, store,
                                                   manager):
        sid = manager.create_session("census", procedure="gai-proportional")
        _explore(manager, sid)
        expected = manager.decision_log_bytes(sid)
        fresh = _fresh_manager(census, store)
        result = fresh.recover_session(sid)
        assert result["recovered"] is True
        assert result["replayed"] > 0
        assert fresh.decision_log_bytes(sid) == expected

    def test_recovered_session_continues_identically(self, census, store,
                                                     manager):
        """Post-recovery commands see the same wealth and stream ids as
        an uninterrupted session would."""
        sid = manager.create_session("census", procedure="gai-proportional")
        _explore(manager, sid)
        fresh = _fresh_manager(census, store)
        fresh.recover_session(sid)
        # same follow-up on both managers must produce identical rows
        view_old = manager.show(sid, "race", where=WHERE)
        view_new = fresh.show(sid, "race", where=WHERE)
        assert (view_old.hypothesis.hypothesis_id
                == view_new.hypothesis.hypothesis_id)
        assert manager.decision_log_bytes(sid) == \
            fresh.decision_log_bytes(sid)

    def test_recover_live_session_is_noop(self, manager):
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE)
        result = manager.recover_session(sid)
        assert result["recovered"] is False
        assert result["decisions"] == len(manager.decision_log(sid))

    def test_recover_unknown_session_raises(self, manager):
        with pytest.raises(SessionError):
            manager.recover_session("nope")

    def test_recover_without_store_raises(self, census):
        m = SessionManager()
        m.register_dataset(census, name="census")
        with pytest.raises(StoreError):
            m.recover_session("s0000")

    def test_snapshot_interval_does_not_change_replay(self, census):
        """snapshot_every=1 (compact constantly) and =0 (never) recover
        the same bytes."""
        logs = {}
        for every in (0, 1, 2):
            store = MemorySessionStore()
            m = _fresh_manager(census, store, snapshot_every=every)
            sid = m.create_session("census", procedure="gai-proportional")
            _explore(m, sid)
            fresh = _fresh_manager(census, store)
            fresh.recover_session(sid)
            logs[every] = fresh.decision_log_bytes(sid)
        assert logs[0] == logs[1] == logs[2]


class TestEvictedRecovery:
    def test_evicted_session_recoverable_after_crash(self, census, store,
                                                     manager):
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE)
        expected = manager.decision_log_bytes(sid)
        assert manager._evict_session(sid, reason="idle")
        fresh = _fresh_manager(census, store)
        # the durable tombstone answers even in a fresh process
        with pytest.raises(SessionEvictedError) as exc_info:
            fresh.show(sid, "age", where=WHERE)
        assert exc_info.value.args[1]["recoverable"] is True
        fresh.recover_session(sid)
        assert fresh.decision_log_bytes(sid) == expected

    def test_recovery_clears_tombstone(self, census, store, manager):
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE)
        manager._evict_session(sid, reason="idle")
        manager.recover_session(sid)
        assert manager.tombstone(sid) is None
        assert store.tombstone(sid) is None

    def test_nonrecoverable_tombstone_stays_flagged(self, census, manager):
        """A volatile session's tombstone advertises recoverable=False."""
        from repro.procedures import make_procedure

        sid = manager.create_session(
            "census", procedure=lambda: make_procedure(
                "epsilon-hybrid", alpha=0.05))
        manager._evict_session(sid, reason="idle")
        assert manager.tombstone(sid)["recoverable"] is False


class TestCloseAndVolatile:
    def test_close_removes_durable_state(self, store, manager):
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE)
        manager.close_session(sid)
        assert store.load(sid) is None
        with pytest.raises(SessionError):
            manager.recover_session(sid)

    def test_callable_procedure_is_volatile(self, store, manager):
        from repro.procedures import make_procedure

        sid = manager.create_session(
            "census", procedure=lambda: make_procedure(
                "epsilon-hybrid", alpha=0.05))
        manager.show(sid, "education", where=WHERE)
        assert store.load(sid) is None  # never written



class TestRecoverAll:
    def test_boot_recovers_live_skips_tombstoned(self, census, store,
                                                 manager):
        live = manager.create_session("census")
        manager.show(live, "education", where=WHERE)
        evicted = manager.create_session("census")
        manager.show(evicted, "age", where=WHERE)
        manager._evict_session(evicted, reason="capacity")
        fresh = _fresh_manager(census, store)
        report = fresh.recover_all()
        assert report["recovered"] == [live]
        assert report["skipped_tombstoned"] == [evicted]
        assert report["failed"] == {}
        assert live in fresh.session_ids()
        assert evicted not in fresh.session_ids()

    def test_auto_ids_never_collide_after_recovery(self, census, store,
                                                   manager):
        sids = [manager.create_session("census") for _ in range(3)]
        fresh = _fresh_manager(census, store)
        fresh.recover_all()
        new = fresh.create_session("census")
        assert new not in sids

    def test_failed_recovery_is_reported_not_raised(self, census, store,
                                                    manager):
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE)
        # corrupt the stored meta: the dataset name won't resolve
        stored = store.load(sid)
        meta = dict(stored.meta, dataset="gone")
        store._meta[sid] = json.loads(json.dumps(meta))
        fresh = _fresh_manager(census, store)
        report = fresh.recover_all()
        assert sid in report["failed"]
        assert sid not in fresh.session_ids()

    def test_create_idem_token_survives_crash(self, census, store, manager):
        sid = manager.create_session("census", idem_token="create-1")
        fresh = _fresh_manager(census, store)
        fresh.recover_all()
        replay = store.get_idem("create-1")
        assert replay is not None
        assert replay["result"]["session_id"] == sid


class TestWalShape:
    def test_descriptive_show_is_logged_too(self, store, manager):
        """Descriptive shows consume hypothesis-stream ids; skipping
        them on replay would shift every later id."""
        sid = manager.create_session("census")
        manager.show(sid, "education", where=WHERE, descriptive=True)
        manager.show(sid, "age", where=WHERE)
        stored = store.load(sid)
        cmds = stored.commands()
        assert [c["cmd"] for c in cmds] == ["show", "show"]
        assert cmds[0]["descriptive"] is True

    def test_failed_show_is_not_logged(self, store, manager):
        from repro.errors import SchemaError

        sid = manager.create_session("census")
        with pytest.raises(SchemaError):
            manager.show(sid, "no_such_column", where=WHERE)
        assert store.load(sid).wal_seq == 0

    def test_wal_entries_carry_the_records(self, store, manager):
        sid = manager.create_session("census")
        view = manager.show(sid, "education", where=WHERE)
        stored = store.load(sid)
        rows = stored.records()
        assert rows == [r.to_dict() for r in manager.decision_log(sid)]
        assert len(rows) > 0
        assert view.hypothesis is not None
