"""Backend-agnostic contract tests for the write-ahead session store.

Every backend — the dict-backed in-memory oracle, the fsync-batched
jsonl segment files, and the WAL-mode sqlite database — must satisfy
the same :class:`repro.store.SessionStore` contract: ordered tails,
atomic staged commits, prefix compaction that preserves the idem replay
horizon, tombstone routing, and supersede-on-recreate.  The jsonl
backend additionally tolerates torn trailing lines (a SIGKILL mid-write
loses at most the unacknowledged entry) and both disk backends must
answer identically after a close-and-reopen, which is the crash model
every recovery test builds on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    DEFAULT_IDEM_RETAINED,
    SNAPSHOT_VERSION,
    MemorySessionStore,
    make_store,
)
from repro.store.base import order_entries

BACKENDS = ("memory", "jsonl", "sqlite")


def _make(kind: str, tmp_path):
    if kind == "memory":
        return MemorySessionStore()
    if kind == "jsonl":
        return make_store("jsonl", tmp_path / "store")
    return make_store("sqlite", tmp_path / "store.db")


def _reopen(store, kind: str, tmp_path):
    """Close *store* and open a fresh instance over the same state.

    The memory backend cannot survive a close; reopening it returns the
    same object so the shared tests still run (its durability across
    process lives is exactly what it does not promise).
    """
    if kind == "memory":
        return store
    store.close()
    return _make(kind, tmp_path)


META = {"session_id": "s0001", "dataset": "census",
        "procedure": "alpha_investing", "alpha": 0.05, "bins": 10,
        "procedure_kwargs": {}}


def _entry(seq: int, **extra) -> dict:
    entry = {"seq": seq, "cmd": {"cmd": "show", "attribute": f"a{seq}"},
             "records": [{"seq": seq, "value": float(seq)}]}
    entry.update(extra)
    return entry


@pytest.fixture(params=BACKENDS)
def kind(request):
    return request.param


@pytest.fixture()
def store(kind, tmp_path):
    s = _make(kind, tmp_path)
    yield s
    s.close()


class TestRoundtrip:
    def test_create_then_load(self, store):
        store.create("s0001", META)
        stored = store.load("s0001")
        assert stored is not None
        assert stored.meta == META
        assert stored.snapshot is None
        assert stored.entries == ()
        assert stored.tombstone is None
        assert stored.applied == 0
        assert stored.wal_seq == 0
        assert store.session_ids() == ("s0001",)

    def test_unknown_session_loads_none(self, store):
        assert store.load("nope") is None

    def test_appends_keep_order_and_records(self, store):
        store.create("s0001", META)
        for seq in range(4):
            store.append("s0001", _entry(seq))
        stored = store.load("s0001")
        assert [e["seq"] for e in stored.entries] == [0, 1, 2, 3]
        assert stored.wal_seq == 4
        assert stored.commands() == [
            {"cmd": "show", "attribute": f"a{s}"} for s in range(4)
        ]
        assert stored.records() == [
            {"seq": s, "value": float(s)} for s in range(4)
        ]

    def test_append_to_unknown_session_errors(self, store):
        with pytest.raises(StoreError):
            store.append("ghost", _entry(0))

    def test_remove_forgets_everything(self, store):
        store.create("s0001", META)
        store.append("s0001", _entry(0))
        store.set_tombstone("s0001", {"reason": "idle"})
        store.remove("s0001")
        assert store.load("s0001") is None
        assert store.tombstone("s0001") is None
        assert store.session_ids() == ()

    def test_recreate_supersedes_old_trail(self, store):
        store.create("s0001", META)
        store.append("s0001", _entry(0))
        store.set_tombstone("s0001", {"reason": "idle"})
        fresh_meta = dict(META, alpha=0.1)
        store.create("s0001", fresh_meta)
        stored = store.load("s0001")
        assert stored.meta["alpha"] == 0.1
        assert stored.entries == ()
        assert stored.tombstone is None

    def test_values_roundtrip_through_json(self, store):
        """Floats survive by repr — the byte-identity keystone."""
        record = {"p_value": 0.1234567890123456789, "mean": 1 / 3}
        store.create("s0001", META)
        store.append("s0001", {"seq": 0, "cmd": {"cmd": "show"},
                               "records": [record]})
        loaded = store.load("s0001").records()[0]
        assert json.dumps(loaded, sort_keys=True) == json.dumps(
            json.loads(json.dumps(record)), sort_keys=True)


class TestStagedCommits:
    def test_stage_commits_entry_with_idem_response(self, store):
        store.create("s0001", META)
        response = {"v": 2, "ok": True, "result": {"x": 1}}
        with store.stage("s0001", "tok-1") as staged:
            store.append("s0001", _entry(0))
            staged.set_response(response)
        stored = store.load("s0001")
        assert stored.entries[0]["idem"] == {"token": "tok-1",
                                             "response": response}
        assert store.get_idem("tok-1") == response

    def test_stage_without_append_commits_nothing(self, store):
        store.create("s0001", META)
        with store.stage("s0001", "tok-1"):
            pass  # the verb failed: no entry, no idem record
        assert store.load("s0001").entries == ()
        assert store.get_idem("tok-1") is None

    def test_stage_rejects_second_append(self, store):
        store.create("s0001", META)
        with pytest.raises(StoreError), store.stage("s0001", None):
            store.append("s0001", _entry(0))
            store.append("s0001", _entry(1))

    def test_nested_stage_rejected(self, store):
        store.create("s0001", META)
        with pytest.raises(StoreError), store.stage("s0001", None):
            with store.stage("s0001", None):
                pass  # pragma: no cover - never reached

    def test_defer_after_commit_runs_after_the_staged_write(self, store):
        store.create("s0001", META)
        tips: list[int] = []
        with store.stage("s0001", None):
            store.append("s0001", _entry(0))
            assert store.defer_after_commit(
                "s0001", lambda: tips.append(store.load("s0001").wal_seq))
            assert store.load("s0001").wal_seq == 0  # not yet committed
        assert tips == [1]  # ran after the commit landed

    def test_defer_without_stage_returns_false(self, store):
        assert store.defer_after_commit("s0001", lambda: None) is False


class TestCompaction:
    def _seed(self, store, n: int = 5) -> None:
        store.create("s0001", META)
        for seq in range(n):
            with store.stage("s0001", f"tok-{seq}") as staged:
                store.append("s0001", _entry(seq))
                staged.set_response({"ok": True, "seq": seq})

    def test_compact_folds_prefix_and_keeps_tail(self, store):
        self._seed(store, 5)
        full = store.load("s0001")
        store.compact("s0001", {"schema_version": 1}, full.records()[:3], 3)
        stored = store.load("s0001")
        assert stored.snapshot["snapshot_version"] == SNAPSHOT_VERSION
        assert stored.applied == 3
        assert [e["seq"] for e in stored.entries] == [3, 4]
        # snapshot prefix + tail must replay the same command history
        assert stored.commands() == full.commands()
        assert stored.records() == full.records()

    def test_compact_carries_idem_horizon(self, store):
        self._seed(store, 4)
        store.compact("s0001", {}, store.load("s0001").records(), 4)
        assert store.load("s0001").snapshot["idem"] == {
            f"tok-{s}": {"ok": True, "seq": s} for s in range(4)
        }

    def test_compact_twice_merges_snapshot_idem(self, store):
        self._seed(store, 3)
        store.compact("s0001", {}, store.load("s0001").records(), 2)
        with store.stage("s0001", "tok-late") as staged:
            store.append("s0001", _entry(3))
            staged.set_response({"ok": True, "seq": 3})
        store.compact("s0001", {}, store.load("s0001").records(), 4)
        tokens = set(store.load("s0001").snapshot["idem"])
        assert tokens == {"tok-0", "tok-1", "tok-2", "tok-late"}

    def test_compact_bounds_retained_idem(self, store):
        store.create("s0001", META)
        n = DEFAULT_IDEM_RETAINED + 16
        for seq in range(n):
            with store.stage("s0001", f"tok-{seq}") as staged:
                store.append("s0001", {"seq": seq, "cmd": {"cmd": "star"},
                                       "records": []})
                staged.set_response({"seq": seq})
        store.compact("s0001", {}, [], n)
        assert len(store.load("s0001").snapshot["idem"]) == \
            DEFAULT_IDEM_RETAINED

    def test_compact_past_tip_rejected(self, store):
        self._seed(store, 2)
        with pytest.raises(StoreError):
            store.compact("s0001", {}, [], 7)

    def test_compact_unknown_session_rejected(self, store):
        with pytest.raises(StoreError):
            store.compact("ghost", {}, [], 0)


class TestTombstones:
    def test_set_get_clear(self, store):
        store.create("s0001", META)
        tomb = {"session_id": "s0001", "reason": "idle",
                "recoverable": True}
        store.set_tombstone("s0001", tomb)
        assert store.tombstone("s0001") == tomb
        assert store.tombstone_ids() == ("s0001",)
        store.clear_tombstone("s0001")
        assert store.tombstone("s0001") is None
        assert store.tombstone_ids() == ()

    def test_tombstone_keeps_wal(self, store):
        store.create("s0001", META)
        store.append("s0001", _entry(0))
        store.set_tombstone("s0001", {"reason": "capacity"})
        stored = store.load("s0001")
        assert stored.wal_seq == 1
        assert stored.tombstone == {"reason": "capacity"}


class TestReopen:
    """Disk backends must answer identically after close + reopen."""

    def test_state_survives_reopen(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        store.create("s0001", META)
        with store.stage("s0001", "tok-0") as staged:
            store.append("s0001", _entry(0))
            staged.set_response({"ok": True})
        store.append("s0001", _entry(1))
        store.set_tombstone("s0001", {"reason": "idle"})
        store = _reopen(store, kind, tmp_path)
        try:
            stored = store.load("s0001")
            assert stored.wal_seq == 2
            assert stored.meta == META
            assert stored.tombstone == {"reason": "idle"}
            # the idem index is rebuilt from durable state at open
            assert store.get_idem("tok-0") == {"ok": True}
        finally:
            store.close()

    def test_snapshot_survives_reopen(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        store.create("s0001", META)
        for seq in range(4):
            store.append("s0001", _entry(seq))
        store.compact("s0001", {"k": "v"},
                      store.load("s0001").records()[:3], 3)
        before = store.load("s0001")
        store = _reopen(store, kind, tmp_path)
        try:
            after = store.load("s0001")
            assert after.snapshot == before.snapshot
            assert after.entries == before.entries
        finally:
            store.close()


class TestJsonlTornTail:
    """Only the jsonl backend has a torn-line crash mode to tolerate."""

    def _wal_files(self, root):
        return sorted((root / "sessions" / "s0001").glob("wal-*.jsonl"))

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        with make_store("jsonl", tmp_path / "store") as store:
            store.create("s0001", META)
            store.append("s0001", _entry(0))
            store.append("s0001", _entry(1))
        wal = self._wal_files(tmp_path / "store")[-1]
        with open(wal, "ab") as fh:
            fh.write(b'{"seq": 2, "cmd": {"cmd": "sh')  # torn mid-write
        with make_store("jsonl", tmp_path / "store") as store:
            stored = store.load("s0001")
            assert [e["seq"] for e in stored.entries] == [0, 1]

    def test_truncated_mid_file_truncates_tail_there(self, tmp_path):
        """A torn line is only ever trailing in practice, but the loader
        must stop at the first unparsable line wherever it sits."""
        with make_store("jsonl", tmp_path / "store") as store:
            store.create("s0001", META)
            store.append("s0001", _entry(0))
        wal = self._wal_files(tmp_path / "store")[-1]
        with open(wal, "ab") as fh:
            fh.write(b"garbage\n")
            fh.write(json.dumps(_entry(2)).encode() + b"\n")
        with make_store("jsonl", tmp_path / "store") as store:
            stored = store.load("s0001")
            assert [e["seq"] for e in stored.entries] == [0]


_WRITER_SCRIPT = """
import sys
from repro.store import make_store

kind, path, sid, n = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
store = make_store(kind, path)
store.create(sid, {"session_id": sid, "dataset": "census",
                   "procedure": "alpha_investing", "alpha": 0.05,
                   "bins": 10, "procedure_kwargs": {}})
for seq in range(n):
    with store.stage(sid, f"{sid}-tok-{seq}") as staged:
        store.append(sid, {"seq": seq,
                           "cmd": {"cmd": "show", "attribute": f"a{seq}"},
                           "records": [{"seq": seq, "sid": sid}]})
        staged.set_response({"ok": True, "sid": sid, "seq": seq})
store.close()
"""


class TestTwoProcessWriters:
    """Two OS processes, one store path, distinct sessions — the cluster
    invariant.  Sharding guarantees no two workers ever own the same
    session, but they *do* share the directory (jsonl) or database file
    (sqlite), so concurrent create/stage/append from separate processes
    must interleave without corrupting either trail or the idem index."""

    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_concurrent_writers_distinct_sessions(self, kind, tmp_path):
        import os
        import subprocess
        import sys

        path = tmp_path / ("store" if kind == "jsonl" else "store.db")
        src = os.path.abspath(os.path.join(
            os.path.dirname(__file__), "..", "..", "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

        n_entries = 8
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT,
                 kind, str(path), sid, str(n_entries)],
                env=env, stderr=subprocess.PIPE)
            for sid in ("sAAAA", "sBBBB")
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err.decode()

        with make_store(kind, path) as store:
            assert set(store.session_ids()) == {"sAAAA", "sBBBB"}
            for sid in ("sAAAA", "sBBBB"):
                stored = store.load(sid)
                assert stored.wal_seq == n_entries
                assert [e["seq"] for e in stored.entries] == \
                    list(range(n_entries))
                assert all(r["sid"] == sid for r in stored.records())
                # the idem index covers both writers' tokens
                for seq in range(n_entries):
                    assert store.get_idem(f"{sid}-tok-{seq}") == \
                        {"ok": True, "sid": sid, "seq": seq}


class TestOrderEntries:
    def test_sorts_and_truncates_at_gap(self):
        entries = [_entry(2), _entry(0), _entry(1), _entry(4)]
        tail = order_entries(0, entries)
        assert [e["seq"] for e in tail] == [0, 1, 2]

    def test_entries_below_applied_are_dropped(self):
        entries = [_entry(1), _entry(2), _entry(3)]
        tail = order_entries(2, entries)
        assert [e["seq"] for e in tail] == [2, 3]

    def test_bogus_seq_ignored(self):
        tail = order_entries(0, [{"seq": "x"}, _entry(0)])
        assert [e["seq"] for e in tail] == [0]


class TestFactory:
    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            make_store("parquet", tmp_path)

    def test_disk_kinds_require_path(self):
        with pytest.raises(StoreError):
            make_store("jsonl")
        with pytest.raises(StoreError):
            make_store("sqlite")

    def test_memory_kind(self):
        store = make_store("memory")
        assert store.kind == "memory"
        store.close()

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(StoreError):
            make_store("jsonl", tmp_path / "s", fsync="sometimes")
