"""Smoke tests: the shipped examples must run and print their headlines.

The two heavyweight sweeps (census_exploration, recommender_audit) are
exercised at reduced scale through their importable pieces elsewhere; here
we execute the fast examples end-to-end exactly as a user would.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "AWARE risk gauge" in out
        assert "controlled discovery" in out

    def test_holdout_pitfalls(self, capsys):
        out = run_example("holdout_pitfalls.py", capsys)
        assert "0.99" in out or "0.989" in out
        assert "hold-out" in out

    def test_session_export_and_recovery(self, capsys):
        out = run_example("session_export_and_recovery.py", capsys)
        assert "exhausted? True" in out
        assert "regained" in out
        assert "# AWARE session report" in out


@pytest.mark.parametrize(
    "name",
    ["census_exploration.py", "policy_comparison.py", "recommender_audit.py"],
)
def test_heavy_examples_are_importable(name):
    """The heavyweight examples at least parse and expose main()."""
    source = (EXAMPLES / name).read_text(encoding="utf-8")
    compiled = compile(source, name, "exec")
    namespace: dict = {"__name__": "not_main"}
    exec(compiled, namespace)
    assert callable(namespace["main"])
