"""Empirical error-control guarantees — the paper's central claims.

These are the statistical acceptance tests of the reproduction: every
investing rule must control mFDR at level α, which under the complete null
implies weak FWER control (Sec. 5.1), and the per-figure qualitative
orderings of Sec. 7 must hold.
"""

import numpy as np
import pytest

from repro.procedures.base import apply_to_stream
from repro.procedures.registry import make_procedure
from repro.workloads.synthetic import ZStreamGenerator

INVESTING_RULES = [
    "beta-farsighted",
    "gamma-fixed",
    "delta-hopeful",
    "epsilon-hybrid",
    "psi-support",
    "best-foot-forward",
]

ALPHA = 0.05


def empirical_mfdr(procedure_name, null_proportion, m=40, reps=400, seed=0):
    """mFDR_eta(j) = E[V] / (E[R] + eta) with eta = 1 - alpha."""
    generator = ZStreamGenerator(m=m, null_proportion=null_proportion)
    rng = np.random.default_rng(seed)
    total_v = 0.0
    total_r = 0.0
    for _ in range(reps):
        stream = generator.sample(rng)
        proc = make_procedure(procedure_name, alpha=ALPHA)
        mask = apply_to_stream(proc, stream.p_values, stream.support_fractions)
        total_v += (mask & stream.null_mask).sum()
        total_r += mask.sum()
    eta = 1.0 - ALPHA
    return (total_v / reps) / (total_r / reps + eta)


class TestMFDRControl:
    @pytest.mark.parametrize("name", INVESTING_RULES)
    def test_mfdr_under_complete_null(self, name):
        value = empirical_mfdr(name, null_proportion=1.0)
        assert value <= ALPHA * 1.3, f"{name}: mFDR {value:.4f} exceeds budget"

    @pytest.mark.parametrize("name", INVESTING_RULES)
    def test_mfdr_with_mixed_truth(self, name):
        value = empirical_mfdr(name, null_proportion=0.75)
        assert value <= ALPHA * 1.3, f"{name}: mFDR {value:.4f} exceeds budget"

    @pytest.mark.parametrize("name", INVESTING_RULES)
    def test_weak_fwer_under_complete_null(self, name):
        """mFDR_{1-alpha} <= alpha implies E[V] <= alpha under the global
        null; check the per-run false-discovery count directly."""
        generator = ZStreamGenerator(m=30, null_proportion=1.0)
        rng = np.random.default_rng(1)
        false_counts = []
        for _ in range(400):
            stream = generator.sample(rng)
            proc = make_procedure(name, alpha=ALPHA)
            mask = apply_to_stream(proc, stream.p_values, stream.support_fractions)
            false_counts.append(mask.sum())
        assert np.mean(false_counts) <= ALPHA * 1.4


class TestPowerOrderings:
    """The Sec. 7.2 qualitative findings, as assertions."""

    def _power(self, name, null_proportion, m, reps=300, seed=2):
        generator = ZStreamGenerator(m=m, null_proportion=null_proportion)
        rng = np.random.default_rng(seed)
        powers = []
        for _ in range(reps):
            stream = generator.sample(rng)
            proc = make_procedure(name, alpha=ALPHA)
            mask = apply_to_stream(proc, stream.p_values, stream.support_fractions)
            n_alt = stream.num_alternatives
            if n_alt:
                powers.append((mask & ~stream.null_mask).sum() / n_alt)
        return float(np.mean(powers))

    def test_gamma_fixed_beats_delta_hopeful_under_high_randomness(self):
        gamma = self._power("gamma-fixed", null_proportion=0.75, m=64)
        delta = self._power("delta-hopeful", null_proportion=0.75, m=64)
        assert gamma > delta + 0.05

    def test_delta_hopeful_beats_gamma_fixed_under_low_randomness(self):
        gamma = self._power("gamma-fixed", null_proportion=0.25, m=64)
        delta = self._power("delta-hopeful", null_proportion=0.25, m=64)
        assert delta > gamma + 0.05

    def test_hybrid_tracks_the_better_rule(self):
        for null_proportion in (0.25, 0.75):
            gamma = self._power("gamma-fixed", null_proportion, m=64)
            delta = self._power("delta-hopeful", null_proportion, m=64)
            hybrid = self._power("epsilon-hybrid", null_proportion, m=64)
            assert hybrid >= min(gamma, delta) - 0.03

    def test_investing_rules_beat_seqfdr_at_scale(self):
        seqfdr = self._power("seqfdr", null_proportion=0.75, m=64)
        gamma = self._power("gamma-fixed", null_proportion=0.75, m=64)
        assert gamma > seqfdr + 0.1

    def test_beta_farsighted_power_decays_with_m_under_randomness(self):
        early = self._power("beta-farsighted", null_proportion=0.75, m=8)
        late = self._power("beta-farsighted", null_proportion=0.75, m=64)
        assert early > late
