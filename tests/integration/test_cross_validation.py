"""Cross-checks between independent implementations of the same quantity.

These tests catch silent drift between layers: the statistic-level
synthetic stream vs real data-level tests, the closed-form power math vs
simulation, the session's decisions vs the bare procedure on the same
p-values, and the exported snapshot vs the live session.
"""

import json

import numpy as np
import pytest

from repro.exploration.export import session_to_dict
from repro.exploration.predicate import Eq
from repro.exploration.session import ExplorationSession
from repro.procedures.base import apply_to_stream
from repro.procedures.registry import make_procedure
from repro.stats.power import power_z_test_two_sample
from repro.workloads.synthetic import TwoSampleStreamGenerator, ZStreamGenerator


class TestStatisticVsDataLevel:
    """The Exp. 1 shortcut (z statistics) must match running real tests."""

    @pytest.mark.parametrize("null_proportion", [0.25, 0.75])
    def test_procedure_metrics_agree(self, null_proportion, rng):
        m, reps = 40, 60
        z_gen = ZStreamGenerator(m=m, null_proportion=null_proportion)
        t_gen = TwoSampleStreamGenerator(
            m=m, null_proportion=null_proportion, n_per_group=150
        )

        def avg_power(gen):
            powers = []
            for _ in range(reps):
                stream = gen.sample(rng)
                proc = make_procedure("gamma-fixed")
                mask = apply_to_stream(proc, stream.p_values)
                if stream.num_alternatives:
                    powers.append(
                        (mask & ~stream.null_mask).sum() / stream.num_alternatives
                    )
            return float(np.mean(powers))

        assert avg_power(z_gen) == pytest.approx(avg_power(t_gen), abs=0.10)

    def test_power_formula_matches_simulation(self, rng):
        """Closed-form z power vs the empirical rejection rate."""
        effect, n, alpha = 0.4, 60, 0.05
        predicted = power_z_test_two_sample(effect, n, alpha)
        rejections = 0
        reps = 2000
        for _ in range(reps):
            x = rng.normal(0.0, 1.0, n)
            y = rng.normal(-effect, 1.0, n)
            z = (x.mean() - y.mean()) / np.sqrt(2.0 / n)
            from repro.stats.tests import z_test_from_statistic

            if z_test_from_statistic(float(z)).p_value <= alpha:
                rejections += 1
        assert rejections / reps == pytest.approx(predicted, abs=0.03)


class TestSessionVsBareProcedure:
    def test_session_decisions_equal_direct_stream(self, census):
        """The session must be a faithful wrapper: same p-values into the
        same procedure give the same decisions and final wealth."""
        session = ExplorationSession(census, procedure="delta-hopeful", alpha=0.05)
        filters = [
            ("sex", Eq("salary_over_50k", "True")),
            ("marital_status", Eq("education", "PhD")),
            ("race", Eq("workclass", "Private")),
            ("sex", Eq("education", "Bachelor")),
        ]
        for target, pred in filters:
            session.show(target, where=pred)
        hyps = session.active_hypotheses()
        direct = make_procedure("delta-hopeful", alpha=0.05)
        mask = apply_to_stream(
            direct,
            [h.result.p_value for h in hyps],
            [h.support_fraction for h in hyps],
        )
        assert mask.tolist() == [h.rejected for h in hyps]
        assert direct.wealth == pytest.approx(session.wealth)

    def test_export_is_faithful_to_live_session(self, census):
        session = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
        session.show("sex", where=Eq("salary_over_50k", "True"))
        session.show("race", where=Eq("workclass", "Private"))
        payload = json.loads(json.dumps(session_to_dict(session)))
        live = {h.hypothesis_id: h for h in session.history()}
        for record in payload["hypotheses"]:
            hyp = live[record["id"]]
            assert record["rejected"] == hyp.rejected
            assert record["p_value"] == pytest.approx(hyp.p_value)
            assert record["level"] == pytest.approx(hyp.decision.level)
        assert payload["wealth"] == pytest.approx(session.wealth)


class TestGaugeArithmetic:
    def test_wealth_trajectory_reconstructable_from_decisions(self, census):
        """Replaying Eq. (5) by hand over the decision log reproduces the
        ledger balance — no hidden wealth mutations anywhere."""
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)
        for attr, cat in [
            ("workclass", "Private"),
            ("workclass", "Government"),
            ("race", "GroupB"),
        ]:
            session.show("sex", where=Eq(attr, cat))
        decisions = session.procedure.decisions
        wealth = session.procedure.initial_wealth
        for d in decisions:
            if d.exhausted:
                continue
            if d.rejected:
                wealth += 0.05  # omega = alpha
            else:
                wealth -= d.level / (1.0 - d.level)
        assert wealth == pytest.approx(session.wealth, abs=1e-12)
