"""End-to-end AWARE sessions: long explorations, revisions, Theorem 1."""

import numpy as np

from repro.exploration.hypotheses import HypothesisStatus
from repro.exploration.predicate import Eq, Not
from repro.exploration.session import ExplorationSession
from repro.procedures.important import important_subset_fdr
from repro.workloads.census import make_census


class TestLongSession:
    def test_fifty_panel_exploration_stays_consistent(self, census):
        session = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
        filters = []
        for attr in ("education", "marital_status", "workclass", "race", "occupation"):
            for cat in census.categories(attr):
                filters.append((attr, cat))
        shown = 0
        for target in ("sex", "salary_over_50k"):
            for attr, cat in filters:
                session.show(target, where=Eq(attr, cat))
                shown += 1
        assert session.procedure.num_tested == shown
        # Wealth accounting is coherent with the decision log.
        decisions = session.procedure.decisions
        assert len(decisions) == shown
        for hyp, decision in zip(session.active_hypotheses(), decisions):
            assert hyp.decision == decision
        # Every decision remained immutable (indices strictly ordered).
        assert [d.index for d in decisions] == list(range(shown))

    def test_randomized_data_yields_few_discoveries(self):
        census = make_census(6_000, seed=3)
        random_census = census.permute_columns(seed=4)
        session = ExplorationSession(random_census, procedure="gamma-fixed", alpha=0.05)
        for target in ("sex", "salary_over_50k", "education"):
            for attr in ("workclass", "race", "native_region", "marital_status"):
                if attr == target:
                    continue
                for cat in random_census.categories(attr)[:2]:
                    session.show(target, where=Eq(attr, cat))
        assert len(session.discoveries()) <= 2

    def test_planted_signal_is_discovered(self, census):
        session = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
        session.show("sex", where=Eq("salary_over_50k", "True"))
        session.show("salary_over_50k", where=Eq("education", "PhD"))
        session.show("marital_status", where=Eq("education", "PhD"))
        assert len(session.discoveries()) >= 2


class TestRevisionSemantics:
    def test_replay_changes_only_later_decisions(self, census):
        session = ExplorationSession(census, procedure="gamma-fixed", alpha=0.05)
        preds = [
            Eq("salary_over_50k", "True"),
            Eq("education", "PhD"),
            Eq("workclass", "Private"),
            Eq("race", "GroupB"),
            Eq("marital_status", "Married"),
        ]
        hyps = [session.show("sex", where=p).hypothesis for p in preds]
        before = {h.hypothesis_id: h.rejected for h in session.active_hypotheses()}
        target = hyps[2].hypothesis_id
        report = session.delete(target)
        for hyp_id, was, _now in report.changed:
            assert hyp_id > target, "replay must not touch earlier decisions"
            assert before[hyp_id] == was

    def test_supersede_then_delete_chain(self, census):
        session = ExplorationSession(census, procedure="epsilon-hybrid", alpha=0.05)
        session.show("sex", where=Eq("salary_over_50k", "True"))
        rule3 = session.show("sex", where=Not(Eq("salary_over_50k", "True"))).hypothesis
        session.delete(rule3.hypothesis_id)
        statuses = [h.status for h in session.history()]
        assert statuses == [HypothesisStatus.SUPERSEDED, HypothesisStatus.DELETED]
        assert session.active_hypotheses() == ()
        assert session.procedure.num_tested == 0


class TestTheoremOneInSession:
    def test_starred_subset_preserves_fdr_empirically(self):
        """Run many sessions on randomized data; the starred-at-random subset
        of discoveries must not concentrate false discoveries."""
        rng = np.random.default_rng(5)
        ratios = []
        census = make_census(2_000, seed=6)
        for rep in range(30):
            randomized = census.permute_columns(seed=rng.integers(2**31))
            session = ExplorationSession(randomized, procedure="delta-hopeful", alpha=0.1)
            for target in ("sex", "education"):
                for attr in ("workclass", "race", "marital_status"):
                    for cat in randomized.categories(attr)[:2]:
                        session.show(target, where=Eq(attr, cat))
            rejected = np.array([h.rejected for h in session.active_hypotheses()])
            nulls = np.ones_like(rejected, dtype=bool)  # all null by construction
            ratios.append(
                important_subset_fdr(rejected, nulls, subset_fraction=0.5,
                                     n_draws=20, seed=rep)
            )
        # All discoveries are false here, so the subset FDR equals the
        # probability a session made any discovery at all — small under
        # mFDR control at 0.1.
        assert np.mean(ratios) <= 0.15
