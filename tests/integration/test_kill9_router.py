"""Kill-9 behind the router: SIGKILL a worker mid-gesture, retry the idem
token, and α-wealth is spent exactly once.

The sharded-tier extension of ``test_kill9_recovery.py``: a real
:class:`repro.cluster.Cluster` (worker subprocesses over one store
path, in-process router), a real SIGKILL of the session's owning
worker between a gesture's show and its acknowledged star, and three
claims:

* retrying the acknowledged star (same idem token) returns the
  *recorded* response — replayed from the durable idem index by the
  failover owner, never re-executed;
* the wealth ledger and decision log are byte-stable across the crash,
  the failover, *and* the restarted worker taking its hash range back
  (a second shard move, back onto a replica that must be freshly
  re-read);
* exploration continues: the next show lands normally on whoever owns
  the shard by then.

Runs on both disk backends — the CI crash-recovery matrix selects one
with ``-k jsonl`` / ``-k sqlite``.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.cluster import Cluster

ROWS = 2_000
SEED = 0

WHERE_F = {"op": "eq", "column": "sex", "value": "Female"}


@pytest.fixture
def _src_on_pythonpath(monkeypatch):
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH", src + (os.pathsep + existing if existing else ""))


def _ok(envelope: dict) -> dict:
    assert envelope.get("ok"), envelope
    return envelope["result"]


def _log_bytes(router, sid: str) -> bytes:
    entries = _ok(router.handle_dict(
        {"v": 2, "cmd": "decision_log", "session_id": sid}
    ))
    return json.dumps(entries, sort_keys=True).encode()


def _wait_for_fleet(cluster: Cluster, size: int, timeout: float = 90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(cluster.router.worker_ids()) == size:
            return
        time.sleep(0.2)
    pytest.fail(f"fleet never returned to {size} workers "
                f"(have {cluster.router.worker_ids()})")


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
@pytest.mark.usefixtures("_src_on_pythonpath")
def test_sigkill_worker_mid_gesture_idem_retry_spends_once(
    tmp_path, backend
):
    store_path = (tmp_path / "store") if backend == "jsonl" \
        else (tmp_path / "store.db")
    cluster = Cluster(
        2,
        rows=ROWS,
        seed=SEED,
        store=backend,
        store_path=str(store_path),
        store_fsync="batch",
        snapshot_every=3,
    )
    with cluster:
        router = cluster.router
        sid = _ok(router.handle_dict(
            {"v": 2, "cmd": "create_session", "dataset": "census",
             "idem": "boot-create"}
        ))["session_id"]

        # A first full gesture, so the crash lands on a session with
        # history (snapshots + appends in the store, not just a create).
        view = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "education", "where": WHERE_F}
        ))
        _ok(router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view["hypothesis"]["id"]}
        ))

        # Mid-gesture: the show happened, its star is acknowledged with
        # an idem token... and then the owner dies before the client
        # hears back (the retry models the client's timeout path).
        view2 = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "age", "where": WHERE_F}
        ))
        acked = router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view2["hypothesis"]["id"],
             "idem": "star-under-fire"}
        )
        assert acked.get("ok"), acked
        wealth = _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"]
        log = _log_bytes(router, sid)

        owner = router.owner_of(sid)
        cluster.supervisor.kill(owner, signal.SIGKILL)

        # Retry immediately — before the monitor even notices.  The
        # router hits the corpse's port, marks it dead, fails over to
        # the survivor, which fresh-recovers from the store and answers
        # from the durable idem index.
        retried = router.handle_dict(
            {"v": 2, "cmd": "star", "session_id": sid,
             "hypothesis_id": view2["hypothesis"]["id"],
             "idem": "star-under-fire"}
        )
        assert retried == acked
        assert _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"] == pytest.approx(wealth, abs=1e-12)
        assert _log_bytes(router, sid) == log
        assert router.shard_moves >= 1

        # The supervisor restarts the dead worker; its replacement takes
        # the same hash range back — a second shard move, onto a boot
        # replica that must be freshly re-read, not trusted.
        _wait_for_fleet(cluster, 2)
        assert _ok(router.handle_dict(
            {"v": 2, "cmd": "wealth", "session_id": sid}
        ))["wealth"] == pytest.approx(wealth, abs=1e-12)
        assert _log_bytes(router, sid) == log

        # And the gesture stream continues wherever the shard lives now.
        view3 = _ok(router.handle_dict(
            {"v": 2, "cmd": "show", "session_id": sid,
             "attribute": "occupation", "where": WHERE_F}
        ))
        assert view3["hypothesis"]["id"] == 3

        # A retried create (same token) still lands on the one recorded
        # session, even after the fleet churned.
        assert _ok(router.handle_dict(
            {"v": 2, "cmd": "create_session", "dataset": "census",
             "idem": "boot-create"}
        ))["session_id"] == sid
