"""Qualitative figure-shape assertions: who wins, where, by how much.

Each test reruns a figure at reduced repetitions and asserts the *shape*
the paper reports — the reproduction criterion of DESIGN.md §2.
"""

import pytest

from repro.experiments import run_exp1a, run_exp1b, run_exp1c, run_exp2


@pytest.fixture(scope="module")
def fig3():
    return run_exp1a(n_reps=300, seed=1)


@pytest.fixture(scope="module")
def fig4():
    return run_exp1b(n_reps=300, seed=2)


@pytest.fixture(scope="module")
def fig5():
    return run_exp1c(n_reps=300, seed=3)


@pytest.fixture(scope="module")
def fig6():
    return run_exp2(n_reps=8, n_rows=10_000, n_steps=60, seed=4)


class TestFigure3Shapes:
    def test_pcer_has_highest_power(self, fig3):
        for m in (16, 32, 64):
            pcer = fig3.get("75% Null", m, "pcer").avg_power
            bonf = fig3.get("75% Null", m, "bonferroni").avg_power
            bh = fig3.get("75% Null", m, "bhfdr").avg_power
            assert pcer > bh > bonf

    def test_pcer_fdr_explodes_under_global_null(self, fig3):
        fdr_64 = fig3.get("100% Null", 64, "pcer").avg_fdr
        fdr_4 = fig3.get("100% Null", 4, "pcer").avg_fdr
        assert fdr_64 > 0.5  # the paper's "most discoveries are bogus" regime
        assert fdr_64 > fdr_4

    def test_bonferroni_lowest_fdr_and_discoveries(self, fig3):
        for m in (16, 64):
            def cell(proc, metric, m=m):
                return getattr(fig3.get("75% Null", m, proc), metric)

            assert cell("bonferroni", "avg_fdr") <= cell("pcer", "avg_fdr")
            assert cell("bonferroni", "avg_discoveries") <= cell("bhfdr", "avg_discoveries")

    def test_bhfdr_controls_fdr_at_alpha(self, fig3):
        for panel in ("75% Null", "100% Null"):
            for m in (4, 8, 16, 32, 64):
                assert fig3.get(panel, m, "bhfdr").avg_fdr <= 0.05 + 0.02

    def test_bonferroni_power_decays_with_m(self, fig3):
        assert (
            fig3.get("75% Null", 64, "bonferroni").avg_power
            < fig3.get("75% Null", 16, "bonferroni").avg_power
        )


class TestFigure4Shapes:
    def test_all_procedures_control_fdr(self, fig4):
        for panel in ("25% Null", "75% Null", "100% Null"):
            for m in (4, 16, 64):
                for proc in fig4.procedures():
                    fdr = fig4.get(panel, m, proc).avg_fdr
                    assert fdr <= 0.05 + 0.03, f"{proc} at {panel}, m={m}: {fdr}"

    def test_gamma_delta_crossover(self, fig4):
        gamma_hi = fig4.get("75% Null", 64, "gamma-fixed").avg_power
        delta_hi = fig4.get("75% Null", 64, "delta-hopeful").avg_power
        assert gamma_hi > delta_hi
        gamma_lo = fig4.get("25% Null", 64, "gamma-fixed").avg_power
        delta_lo = fig4.get("25% Null", 64, "delta-hopeful").avg_power
        assert delta_lo > gamma_lo

    def test_seqfdr_power_collapses_with_m(self, fig4):
        assert (
            fig4.get("25% Null", 64, "seqfdr").avg_power
            < fig4.get("25% Null", 4, "seqfdr").avg_power
        )

    def test_beta_farsighted_sustains_power_under_low_randomness(self, fig4):
        power_64 = fig4.get("25% Null", 64, "beta-farsighted").avg_power
        assert power_64 > 0.5


class TestFigure5Shapes:
    def test_power_grows_with_sample_size(self, fig5):
        for proc in ("gamma-fixed", "epsilon-hybrid", "psi-support"):
            low = fig5.get("25% Null", 0.1, proc).avg_power
            high = fig5.get("25% Null", 0.9, proc).avg_power
            assert high > low

    def test_psi_support_lowest_fdr_at_75_null(self, fig5):
        """The Sec. 7.2.3 claim: support-aware budgets cut FDR on thin data."""
        for fraction in (0.1, 0.3):
            psi = fig5.get("75% Null", fraction, "psi-support").avg_fdr
            others = [
                fig5.get("75% Null", fraction, p).avg_fdr
                for p in ("delta-hopeful", "beta-farsighted", "seqfdr")
            ]
            assert psi <= min(others) + 0.01

    def test_fdr_controlled_throughout(self, fig5):
        for panel in ("25% Null", "75% Null"):
            for fraction in (0.1, 0.5, 0.9):
                for proc in fig5.procedures():
                    assert fig5.get(panel, fraction, proc).avg_fdr <= 0.08


class TestFigure6Shapes:
    def test_conservative_rules_control_fdr_on_census(self, fig6):
        for fraction in (0.3, 0.7, 0.9):
            for proc in ("gamma-fixed", "psi-support"):
                assert fig6.get("Census", fraction, proc).avg_fdr <= 0.06

    def test_power_grows_with_sample_size_on_census(self, fig6):
        for proc in ("gamma-fixed", "epsilon-hybrid"):
            low = fig6.get("Census", 0.1, proc).avg_power
            high = fig6.get("Census", 0.9, proc).avg_power
            assert high >= low

    def test_randomized_census_fdr_near_alpha(self, fig6):
        """On the global null, average FDR stays in the paper's 0-0.10 band."""
        for fraction in (0.3, 0.7):
            for proc in fig6.procedures():
                assert fig6.get("Randomized Census", fraction, proc).avg_fdr <= 0.12

    def test_randomized_census_makes_few_discoveries(self, fig6):
        for proc in ("gamma-fixed", "epsilon-hybrid", "seqfdr"):
            assert fig6.get("Randomized Census", 0.5, proc).avg_discoveries <= 1.0
