"""Kill-9 crash recovery e2e: a real server, a real SIGKILL, same bytes.

Boots ``repro serve --store <backend>`` as a subprocess, drives a mixed
gesture workload over HTTP, SIGKILLs the server mid-stream (after a
known prefix of acknowledged commands), restarts it over the same store
path, finishes the workload, and asserts the final decision log is
byte-identical to an uninterrupted serial run of the same commands
against an in-process service.  Runs on both disk backends — the jsonl
store's flush-per-append makes every *acknowledged* command SIGKILL-
safe even under ``--store-fsync batch``, and sqlite's WAL mode does the
same; the test is exactly that guarantee.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.api.client import Client
from repro.api.service import ExplorationService
from repro.service import SessionManager
from repro.workloads.census import make_census

ROWS = 2_000
SEED = 0

WHERE_F = {"op": "eq", "column": "sex", "value": "Female"}
WHERE_NOT_F = {"op": "not", "operand": WHERE_F}

#: The scripted workload; ``$hyp`` resolves to the first show's id and
#: ``$hyp2`` to the rule-3 comparison's.  The crash lands after KILL_AT.
COMMANDS = [
    {"cmd": "show", "attribute": "education", "where": WHERE_F},
    {"cmd": "show", "attribute": "age", "where": WHERE_F},
    {"cmd": "star", "hypothesis_id": "$hyp"},
    {"cmd": "show", "attribute": "age", "where": WHERE_NOT_F},
    # ---- KILL_AT = 4: SIGKILL lands here ----
    {"cmd": "override", "hypothesis_id": "$hyp2"},
    {"cmd": "unstar", "hypothesis_id": "$hyp"},
    {"cmd": "show", "attribute": "occupation", "where": WHERE_NOT_F},
]
KILL_AT = 4

_BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")


def _spawn_server(store: str, store_path, port: int = 0):
    """Start ``repro serve`` and return (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--rows", str(ROWS), "--seed", str(SEED),
         "--store", store, "--store-path", str(store_path),
         "--snapshot-every", "3", "--store-fsync", "batch"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True,
    )
    deadline = time.monotonic() + 60
    for line in proc.stdout:
        match = _BANNER.search(line)
        if match:
            return proc, int(match.group(1))
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            break
    proc.kill()
    raise RuntimeError("server never printed its banner")


def _resolve(cmd: dict, ids: dict) -> dict:
    out = dict(cmd)
    if isinstance(out.get("hypothesis_id"), str):
        out["hypothesis_id"] = ids[out["hypothesis_id"]]
    return out


def _run_commands(client: Client, sid: str, commands, ids: dict) -> None:
    for i, cmd in enumerate(commands):
        payload = dict(_resolve(cmd, ids), v=2, session_id=sid)
        result = client.call(payload)
        hyp = (result.get("hypothesis") or {}).get("id")
        if cmd["cmd"] == "show" and hyp is not None:
            ids.setdefault("$hyp", hyp)
            if cmd.get("where") == WHERE_NOT_F and "$hyp2" not in ids:
                ids["$hyp2"] = hyp


def _decision_log(client: Client, sid: str) -> bytes:
    result = client.call({"v": 2, "cmd": "decision_log", "session_id": sid})
    return json.dumps(result, sort_keys=True).encode()


def _serial_reference() -> bytes:
    """The uninterrupted run: same dataset, same commands, no store."""
    service = ExplorationService(manager=SessionManager(), max_sessions=4)
    service.register_dataset(make_census(ROWS, seed=SEED), name="census")
    env = service.handle_dict({"v": 2, "cmd": "create_session",
                               "dataset": "census"})
    sid = env["result"]["session_id"]
    ids: dict = {}
    for cmd in COMMANDS:
        payload = dict(_resolve(cmd, ids), v=2, session_id=sid)
        out = service.handle_dict(payload)
        assert out["ok"], out
        hyp = (out["result"].get("hypothesis") or {}).get("id")
        if cmd["cmd"] == "show" and hyp is not None:
            ids.setdefault("$hyp", hyp)
            if cmd.get("where") == WHERE_NOT_F and "$hyp2" not in ids:
                ids["$hyp2"] = hyp
    log = service.handle_dict({"v": 2, "cmd": "decision_log",
                               "session_id": sid})
    return json.dumps(log["result"], sort_keys=True).encode()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_kill9_recovery_byte_identical(backend, tmp_path):
    store_path = tmp_path / ("store" if backend == "jsonl" else "store.db")
    proc, port = _spawn_server(backend, store_path)
    sid = None
    try:
        ids: dict = {}
        with Client(port=port) as client:
            sid = client.create_session("census")
            _run_commands(client, sid, COMMANDS[:KILL_AT], ids)
        # SIGKILL: no atexit, no flush-on-close, no graceful anything.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        proc, port = _spawn_server(backend, store_path)
        with Client(port=port) as client:
            # boot-time recover_all already revived the session
            recovered = client.recover(sid)
            assert recovered["recovered"] is False, (
                "the session should be live after boot recovery")
            _run_commands(client, sid, COMMANDS[KILL_AT:], ids)
            final = _decision_log(client, sid)
    finally:
        proc.kill()
        proc.wait(timeout=30)

    assert final == _serial_reference()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_kill9_preserves_acknowledged_prefix(backend, tmp_path):
    """After the crash alone (no continuation), the recovered log equals
    the serial run's log truncated to the acknowledged prefix."""
    store_path = tmp_path / ("store" if backend == "jsonl" else "store.db")
    proc, port = _spawn_server(backend, store_path)
    try:
        ids: dict = {}
        with Client(port=port) as client:
            sid = client.create_session("census")
            _run_commands(client, sid, COMMANDS[:KILL_AT], ids)
            before = _decision_log(client, sid)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        proc, port = _spawn_server(backend, store_path)
        with Client(port=port) as client:
            after = _decision_log(client, sid)
    finally:
        proc.kill()
        proc.wait(timeout=30)

    assert after == before
