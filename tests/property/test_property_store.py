"""Property: compaction never changes what a recovery replays.

The snapshot is a *command-prefix* checkpoint, so "snapshot + tail
replay" must be the same computation as "full-log replay" — for any
command stream, any snapshot interval, and any compaction point.  Two
layers pin this down:

* store-level — for random entry streams and a random compaction point,
  :meth:`StoredSession.commands` / ``records`` are invariant under
  :meth:`SessionStore.compact`;
* manager-level — a random exploration workload recorded under any
  ``snapshot_every`` recovers into a fresh manager with a byte-identical
  decision log, equal to the log recovered under ``snapshot_every=0``
  (never compact) from an identical run.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration.dataset import Dataset
from repro.exploration.predicate import Eq, Not
from repro.service import SessionManager
from repro.store import MemorySessionStore

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle")
_ATTRS = ("color", "shape")
_CATEGORY = {"color": _COLORS, "shape": _SHAPES}


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(24680)
    n = 400
    return Dataset(
        {
            "color": rng.choice(_COLORS, size=n),
            "shape": rng.choice(_SHAPES, size=n),
        },
        categorical=list(_ATTRS),
        name="store-property",
    )


_BASE = _build_dataset()


# -- store-level: compaction is replay-invariant -----------------------------

def _entry(seq: int, with_idem: bool) -> dict:
    entry = {
        "seq": seq,
        "cmd": {"cmd": "show", "attribute": f"a{seq}", "bins": seq % 7},
        "records": [{"seq": seq, "p": seq / 7.0}] * (seq % 3),
    }
    if with_idem:
        entry["idem"] = {"token": f"tok-{seq}",
                         "response": {"ok": True, "seq": seq}}
    return entry


@st.composite
def entry_stream(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    flags = [draw(st.booleans()) for _ in range(n)]
    cut = draw(st.integers(min_value=0, max_value=n))
    return [_entry(i, f) for i, f in enumerate(flags)], cut


class TestStoreCompactionInvariance:
    @settings(max_examples=60, deadline=None)
    @given(entry_stream())
    def test_compact_preserves_commands_and_records(self, case):
        entries, cut = case
        store = MemorySessionStore()
        store.create("s", {"session_id": "s"})
        for entry in entries:
            store.append("s", entry)
        before = store.load("s")
        store.compact("s", {"k": "v"}, before.records()[: sum(
            len(e["records"]) for e in entries[:cut])], cut)
        after = store.load("s")
        assert after.commands() == before.commands()
        assert after.records() == before.records()
        assert after.applied == cut
        assert after.wal_seq == before.wal_seq
        # the idem horizon of compacted entries survives in the snapshot
        for entry in entries[:cut]:
            if "idem" in entry:
                token = entry["idem"]["token"]
                assert after.snapshot["idem"][token] == \
                    entry["idem"]["response"]


# -- manager-level: snapshot interval is replay-invariant --------------------

@st.composite
def exploration(draw):
    """A random mixed verb stream over the toy dataset."""
    n = draw(st.integers(min_value=1, max_value=10))
    steps = []
    for _ in range(n):
        target = draw(st.sampled_from(_ATTRS))
        filt = draw(st.sampled_from([a for a in _ATTRS if a != target]))
        value = draw(st.sampled_from(_CATEGORY[filt]))
        negate = draw(st.booleans())
        where = Not(Eq(filt, value)) if negate else Eq(filt, value)
        steps.append(("show", target, where))
        if draw(st.booleans()):
            steps.append(("star",))
            if draw(st.booleans()):
                steps.append(("unstar",))
        if draw(st.booleans()):
            steps.append(("delete",))
    return steps


def _run_workload(steps, snapshot_every: int):
    """Execute *steps*, then crash-recover into a fresh manager."""
    store = MemorySessionStore()
    dataset = _BASE.select_index(
        np.arange(_BASE.n_rows, dtype=np.intp), name="run"
    )
    manager = SessionManager(store=store, snapshot_every=snapshot_every)
    manager.register_dataset(dataset, name="d")
    sid = manager.create_session("d")
    last_hyp = None
    for step in steps:
        if step[0] == "show":
            view = manager.show(sid, step[1], where=step[2])
            if view.hypothesis is not None:
                last_hyp = view.hypothesis.hypothesis_id
        elif step[0] == "star" and last_hyp is not None:
            manager.star(sid, last_hyp)
        elif step[0] == "unstar" and last_hyp is not None:
            manager.unstar(sid, last_hyp)
        elif step[0] == "delete" and last_hyp is not None:
            manager.delete_hypothesis(sid, last_hyp)
            last_hyp = None
    live = manager.decision_log_bytes(sid)
    fresh = SessionManager(store=store)
    fresh.register_dataset(dataset, name="d")
    fresh.recover_session(sid)
    return live, fresh.decision_log_bytes(sid)


class TestRecoveryReplayInvariance:
    @settings(max_examples=15, deadline=None)
    @given(exploration(), st.sampled_from([1, 2, 5]))
    def test_snapshot_tail_equals_full_log_replay(self, steps, every):
        """Recovery through snapshot+tail (compaction on) and through the
        full log (compaction off) both rebuild the live session's exact
        decision log."""
        live_full, recovered_full = _run_workload(steps, snapshot_every=0)
        live_snap, recovered_snap = _run_workload(steps, snapshot_every=every)
        assert live_full == live_snap  # sanity: runs are deterministic
        assert recovered_full == live_full
        assert recovered_snap == live_snap
