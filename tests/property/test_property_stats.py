"""Property-based tests: statistical substrate invariants."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats.distributions import ChiSquared, Normal, StudentT
from repro.stats.power import (
    extra_data_to_accept,
    extra_data_to_reject,
    power_z_test_two_sample,
)
from repro.stats.tests import chi_square_gof, t_test_two_sample, z_test_from_statistic

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)
samples = st.lists(finite_floats, min_size=3, max_size=40)


class TestDistributionProperties:
    @given(x=st.floats(min_value=-30, max_value=30, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_normal_cdf_sf_sum_to_one(self, x):
        n = Normal()
        total = float(n.cdf(x)) + float(n.sf(x))
        assert abs(total - 1.0) < 1e-12

    @given(
        x=st.floats(min_value=-10, max_value=10, allow_nan=False),
        df=st.floats(min_value=1, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_t_cdf_monotone_and_bounded(self, x, df):
        t = StudentT(df)
        value = float(t.cdf(x))
        assert 0.0 <= value <= 1.0
        assert float(t.cdf(x + 0.5)) >= value

    @given(
        q=st.floats(min_value=0.001, max_value=0.999),
        df=st.floats(min_value=0.5, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_chi2_ppf_round_trip(self, q, df):
        c = ChiSquared(df)
        assert float(c.cdf(c.ppf(q))) == q or abs(float(c.cdf(c.ppf(q))) - q) < 1e-7


class TestTestInvariants:
    @given(z=st.floats(min_value=-20, max_value=20, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_z_pvalue_bounds_and_symmetry(self, z):
        r_pos = z_test_from_statistic(abs(z))
        r_neg = z_test_from_statistic(-abs(z))
        assert 0.0 <= r_pos.p_value <= 1.0
        assert r_pos.p_value == r_neg.p_value  # two-sided symmetry

    @given(z=st.floats(min_value=0.01, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_z_one_sided_is_half_two_sided(self, z):
        two = z_test_from_statistic(z, "two-sided").p_value
        one = z_test_from_statistic(z, "greater").p_value
        assert abs(two - 2 * one) < 1e-12

    @given(x=samples, y=samples)
    @settings(max_examples=80, deadline=None)
    def test_t_test_symmetry(self, x, y):
        assume(np.std(x) > 0 or np.std(y) > 0)
        a = t_test_two_sample(x, y)
        b = t_test_two_sample(y, x)
        assert a.p_value == b.p_value or abs(a.p_value - b.p_value) < 1e-12
        assert abs(a.statistic + b.statistic) < 1e-9

    @given(x=samples, shift=st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_t_test_location_invariance(self, x, shift):
        assume(np.std(x) > 1e-6)
        y = [v + 1.0 for v in x]
        a = t_test_two_sample(x, y)
        b = t_test_two_sample([v + shift for v in x], [v + shift for v in y])
        assert abs(a.statistic - b.statistic) < 1e-6

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=8)
    )
    @settings(max_examples=80, deadline=None)
    def test_gof_self_comparison_is_null(self, counts):
        assume(sum(counts) > 0 and sum(1 for c in counts if c > 0) >= 2)
        probs = np.asarray(counts, dtype=float) / sum(counts)
        assume(np.all(probs[np.asarray(counts) > 0] > 0))
        keep = [c for c in counts if c > 0]
        kept_probs = np.asarray(keep, dtype=float) / sum(keep)
        r = chi_square_gof(keep, kept_probs)
        assert r.statistic < 1e-9
        assert r.p_value > 0.999


class TestPowerProperties:
    @given(
        effect=st.floats(min_value=0.05, max_value=2.0),
        n=st.integers(min_value=5, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_bounded_and_above_alpha(self, effect, n):
        p = power_z_test_two_sample(effect, n, alpha=0.05)
        assert 0.05 <= p + 1e-9
        assert p <= 1.0

    @given(z=st.floats(min_value=0.01, max_value=1.9))
    @settings(max_examples=100, deadline=None)
    def test_flip_estimates_consistent(self, z):
        """A non-significant z needs extra data; after adding exactly that
        much the statistic sits at the critical value."""
        r = z_test_from_statistic(z)
        k = extra_data_to_reject(r, 0.05)
        if math.isinf(k):
            return
        boosted = z * math.sqrt(1.0 + k)
        crit = 1.9599639845400545
        assert abs(boosted - crit) < 1e-6

    @given(z=st.floats(min_value=2.0, max_value=20.0))
    @settings(max_examples=100, deadline=None)
    def test_dilution_estimate_consistent(self, z):
        r = z_test_from_statistic(z)
        k = extra_data_to_accept(r, 0.05)
        diluted = z / math.sqrt(1.0 + k)
        crit = 1.9599639845400545
        assert abs(diluted - crit) < 1e-6
