"""Property-based tests for the generalized α-investing engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.procedures.alpha_investing.generalized import (
    ConstantLevelGAI,
    GAIBid,
    GAIInvesting,
    ProportionalGAI,
)

p_value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=60
)
gai_policies = st.one_of(
    st.floats(min_value=0.02, max_value=0.8).map(lambda r: ProportionalGAI(rate=r)),
    st.tuples(
        st.floats(min_value=0.001, max_value=0.05),
        st.floats(min_value=0.002, max_value=0.03),
    ).map(lambda lf: ConstantLevelGAI(level=lf[0], fee=lf[1])),
)


class TestGAIEngineProperties:
    @given(policy=gai_policies, p_values=p_value_lists)
    @settings(max_examples=80, deadline=None)
    def test_wealth_and_decision_invariants(self, policy, p_values):
        proc = GAIInvesting(policy, alpha=0.05)
        for p in p_values:
            before = proc.wealth
            d = proc.test(p)
            assert proc.wealth >= 0.0
            assert 0.0 <= d.level < 1.0
            assert d.rejected == (not d.exhausted and p <= d.level)
            if d.exhausted:
                assert proc.wealth == before  # skipped tests cost nothing

    @given(policy=gai_policies, p_values=p_value_lists)
    @settings(max_examples=50, deadline=None)
    def test_determinism_and_reset(self, policy, p_values):
        proc = GAIInvesting(policy, alpha=0.05)
        first = [proc.test(p).rejected for p in p_values]
        proc.reset()
        second = [proc.test(p).rejected for p in p_values]
        assert first == second

    @given(
        alpha=st.floats(min_value=0.01, max_value=0.3),
        alpha_j=st.floats(min_value=1e-6, max_value=0.99),
        phi_j=st.floats(min_value=1e-6, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_reward_bounds_always_hold(self, alpha, alpha_j, phi_j):
        bid = GAIBid(alpha_j=alpha_j, phi_j=phi_j)
        psi = GAIInvesting.max_reward(bid, alpha)
        assert psi >= 0.0
        assert psi <= phi_j + alpha + 1e-12
        assert psi <= max(0.0, phi_j / alpha_j + alpha - 1.0) + 1e-12

    @given(
        alpha=st.floats(min_value=0.01, max_value=0.3),
        alpha_j=st.floats(min_value=1e-4, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_supermartingale_drift_non_positive_under_null(self, alpha, alpha_j):
        """E[dB | true null] >= 0 for B = alpha*R - V - W + W(0): the exact
        condition the reward bound was derived from."""
        phi = 2.0 * alpha_j  # any fee above the level
        bid = GAIBid(alpha_j=alpha_j, phi_j=phi)
        psi = GAIInvesting.max_reward(bid, alpha)
        # Under a true null, rejection probability is exactly alpha_j.
        drift = alpha_j * (alpha - 1.0 - psi) + phi
        assert drift >= -1e-12
