"""Concurrency property: threaded dispatch is invisible in the decisions.

The service contract (``repro/service/manager.py``) promises that N
threads driving N independent sessions over one shared dataset produce
decision logs **byte-identical** to the same sessions run serially:
sessions share only immutable columns and thread-safe memo caches, so
parallelism may change latency but never a p-value, a wealth trajectory,
or a rejection.  Hypothesis generates the workloads — which panels each
session shows, in which interleaving the batch arrives, and how wide the
thread pool is — and every example replays the exact same traffic twice,
serial then threaded, comparing the canonical serialized logs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration.dataset import Dataset
from repro.exploration.predicate import Eq
from repro.service import SessionManager, ShowRequest

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle")
_SIZES = ("small", "medium", "large")
_ATTRS = ("color", "shape", "size")


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(2718)
    n = 600
    color = rng.choice(_COLORS, size=n)
    shape_probs = {
        "red": [0.5, 0.3, 0.2],
        "blue": [0.2, 0.5, 0.3],
        "green": [1 / 3, 1 / 3, 1 / 3],
    }
    shape = np.array([rng.choice(_SHAPES, p=shape_probs[c]) for c in color])
    size = rng.choice(_SIZES, size=n)
    return Dataset(
        {"color": color, "shape": shape, "size": size},
        categorical=list(_ATTRS),
        name="service-property",
    )


_BASE = _build_dataset()

_CATEGORY = {"color": _COLORS, "shape": _SHAPES, "size": _SIZES}


@st.composite
def panel(draw):
    """One (target attribute, filter) panel over the shared dataset."""
    target = draw(st.sampled_from(_ATTRS))
    filt_attr = draw(st.sampled_from([a for a in _ATTRS if a != target]))
    category = draw(st.sampled_from(_CATEGORY[filt_attr]))
    return (target, Eq(filt_attr, category))


@st.composite
def traffic(draw):
    """Per-session panel streams plus a shuffled arrival order."""
    n_sessions = draw(st.integers(min_value=2, max_value=5))
    streams = [
        draw(st.lists(panel(), min_size=1, max_size=8))
        for _ in range(n_sessions)
    ]
    # arrival interleaving: shuffle which session each batch slot belongs
    # to; within one session, steps always arrive in stream order (the
    # batch order across sessions is what exercises the grouping logic)
    slots = [s for s, stream in enumerate(streams) for _ in stream]
    order = draw(st.permutations(slots))
    seen = {s: 0 for s in range(n_sessions)}
    arrival = []
    for s in order:
        arrival.append((s, seen[s]))
        seen[s] += 1
    max_workers = draw(st.sampled_from([None, 2, 4]))
    return streams, arrival, max_workers


def _run(streams, arrival, parallel: bool, max_workers) -> list[bytes]:
    """Replay the traffic on a fresh dataset view + manager; return logs."""
    # Fresh zero-copy view => empty caches, so serial and threaded runs
    # start cold either way and cache state cannot leak between runs.
    dataset = _BASE.select_index(
        np.arange(_BASE.n_rows, dtype=np.intp), name="replay"
    )
    manager = SessionManager(max_workers=max_workers)
    manager.register_dataset(dataset, name="d")
    sids = [manager.create_session("d") for _ in range(len(streams))]
    requests = [
        ShowRequest(sids[s], streams[s][i][0], where=streams[s][i][1])
        for s, i in arrival
    ]
    responses = manager.dispatch(requests, parallel=parallel)
    assert all(r.ok for r in responses), [r.error for r in responses if not r.ok]
    return [manager.decision_log_bytes(sid) for sid in sids]


class TestThreadedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(traffic())
    def test_threaded_logs_byte_identical_to_serial(self, tr):
        streams, arrival, max_workers = tr
        serial = _run(streams, arrival, parallel=False, max_workers=max_workers)
        threaded = _run(streams, arrival, parallel=True, max_workers=max_workers)
        assert serial == threaded

    @settings(max_examples=10, deadline=None)
    @given(traffic())
    def test_arrival_interleaving_is_irrelevant_across_sessions(self, tr):
        """Two different arrival orders of the *same* per-session streams
        give identical logs: only within-session order matters."""
        streams, arrival, max_workers = tr
        session_major = [
            (s, i) for s in range(len(streams)) for i in range(len(streams[s]))
        ]
        a = _run(streams, arrival, parallel=True, max_workers=max_workers)
        b = _run(streams, session_major, parallel=True, max_workers=max_workers)
        assert a == b
