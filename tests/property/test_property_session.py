"""Stateful property test: random AWARE session operations keep invariants.

A hypothesis RuleBasedStateMachine drives an :class:`ExplorationSession`
through random interleavings of panel shows, deletions, stars and
overrides, checking after every step that

* wealth is never negative and matches the ledger,
* the active stream always equals what a fresh replay would decide
  (internal consistency of the revision machinery),
* append-only operations never change earlier decisions,
* history/stream bookkeeping stays coherent (statuses, ids, ordering).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.exploration.dataset import Dataset
from repro.exploration.hypotheses import HypothesisStatus
from repro.exploration.predicate import Eq
from repro.exploration.session import ExplorationSession
from repro.procedures.registry import make_procedure

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle", "star")
_SIZES = ("small", "large")


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(987)
    n = 900
    color = rng.choice(_COLORS, size=n)
    # Planted: shape depends on color (some signal to discover).
    shape_probs = {
        "red": [0.4, 0.3, 0.2, 0.1],
        "blue": [0.1, 0.4, 0.3, 0.2],
        "green": [0.25, 0.25, 0.25, 0.25],
    }
    shape = np.array([rng.choice(_SHAPES, p=shape_probs[c]) for c in color])
    size = rng.choice(_SIZES, size=n)  # independent noise
    return Dataset(
        {"color": color, "shape": shape, "size": size},
        categorical=["color", "shape", "size"],
        name="property-machine",
    )


_DATASET = _build_dataset()


class SessionMachine(RuleBasedStateMachine):
    @initialize()
    def start(self):
        self.session = ExplorationSession(
            _DATASET, procedure="epsilon-hybrid", alpha=0.05
        )
        self.appended_snapshots: list[list[bool]] = []
        self.revised = False

    @rule(
        target_attr=st.sampled_from(("color", "shape")),
        filter_attr=st.sampled_from(("color", "shape", "size")),
        category_index=st.integers(min_value=0, max_value=3),
    )
    def show_panel(self, target_attr, filter_attr, category_index):
        if target_attr == filter_attr:
            return
        categories = _DATASET.categories(filter_attr)
        category = categories[category_index % len(categories)]
        self.session.show(target_attr, where=Eq(filter_attr, category))
        if not self.revised:
            self.appended_snapshots.append(
                [h.rejected for h in self.session.active_hypotheses()]
            )

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def star_something(self, pick):
        history = self.session.history()
        if history:
            self.session.star(history[pick % len(history)].hypothesis_id)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def delete_something(self, pick):
        active = self.session.active_hypotheses()
        if active:
            self.session.delete(active[pick % len(active)].hypothesis_id)
            self.revised = True
            self.appended_snapshots = []

    @invariant()
    def wealth_non_negative(self):
        if not hasattr(self, "session"):
            return
        assert self.session.wealth >= -1e-12

    @invariant()
    def stream_matches_fresh_replay(self):
        if not hasattr(self, "session"):
            return
        fresh = make_procedure("epsilon-hybrid", alpha=0.05)
        for hyp in self.session.active_hypotheses():
            decision = fresh.test(hyp.result.p_value, hyp.support_fraction)
            assert decision.rejected == hyp.rejected
        assert abs(fresh.wealth - self.session.wealth) < 1e-9 or np.isnan(
            self.session.wealth
        )

    @invariant()
    def appends_never_overturn(self):
        if not hasattr(self, "session") or not self.appended_snapshots:
            return
        final = self.appended_snapshots[-1]
        for i, snapshot in enumerate(self.appended_snapshots):
            assert snapshot == final[: len(snapshot)]

    @invariant()
    def bookkeeping_coherent(self):
        if not hasattr(self, "session"):
            return
        history = self.session.history()
        active_ids = [h.hypothesis_id for h in self.session.active_hypotheses()]
        # Active hypotheses are exactly the ACTIVE-status ones, in order.
        expected = [
            h.hypothesis_id for h in history if h.status is HypothesisStatus.ACTIVE
        ]
        assert sorted(active_ids) == sorted(expected)
        # Superseded hypotheses always point at a real successor.
        for h in history:
            if h.status is HypothesisStatus.SUPERSEDED:
                assert h.superseded_by in {x.hypothesis_id for x in history}


SessionMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestSessionMachine = SessionMachine.TestCase
