"""Property: the predicate JSON codec is lossless for the whole algebra.

For any randomly generated predicate tree over a shared dataset,
``predicate_from_dict(predicate_to_dict(p))`` — with a real JSON
serialization in between, exactly what the HTTP transport does — must be

* ``normalize()``-equivalent to the original (structural identity of the
  canonical forms), and
* mask-identical: byte-for-byte the same boolean row mask, which is what
  actually guarantees that a filter shipped over the wire selects the
  same rows the analyst saw.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.protocol import predicate_from_dict, predicate_to_dict
from repro.exploration.dataset import Dataset
from repro.exploration.predicate import TRUE, And, Eq, In, Not, Or, Range

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle")


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(424242)
    n = 400
    return Dataset(
        {
            "color": rng.choice(_COLORS, size=n),
            "shape": rng.choice(_SHAPES, size=n),
            "weight": rng.normal(50.0, 10.0, size=n),
        },
        categorical=["color", "shape"],
        name="codec-property",
    )


_DATASET = _build_dataset()

_CATEGORY = {"color": _COLORS, "shape": _SHAPES}


@st.composite
def leaf(draw):
    which = draw(st.sampled_from(["true", "eq", "in", "range"]))
    if which == "true":
        return TRUE
    if which == "range":
        lo = draw(st.sampled_from([-float("inf"), 20.0, 35.0, 50.0]))
        hi = draw(st.sampled_from([65.0, 80.0, float("inf")]))
        return Range("weight", lo, hi)
    column = draw(st.sampled_from(list(_CATEGORY)))
    categories = _CATEGORY[column]
    if which == "eq":
        return Eq(column, draw(st.sampled_from(categories)))
    values = draw(st.lists(st.sampled_from(categories), min_size=1,
                           max_size=len(categories)))
    return In(column, tuple(values))


def _combine(children):
    a = children
    if len(a) == 1:
        return Not(a[0])
    return And(tuple(a)) if len(a) % 2 else Or(tuple(a))


predicates = st.recursive(
    leaf(),
    lambda inner: st.lists(inner, min_size=1, max_size=3).map(_combine),
    max_leaves=8,
)


class TestPredicateJsonRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(predicates)
    def test_roundtrip_is_normalize_equivalent_and_mask_identical(self, pred):
        wire = json.dumps(predicate_to_dict(pred))
        rebuilt = predicate_from_dict(json.loads(wire))
        assert rebuilt.normalize() == pred.normalize()
        original_mask = pred.mask(_DATASET)
        rebuilt_mask = rebuilt.mask(_DATASET)
        assert original_mask.dtype == rebuilt_mask.dtype == np.bool_
        assert np.array_equal(original_mask, rebuilt_mask)

    @settings(max_examples=100, deadline=None)
    @given(predicates)
    def test_wire_form_is_strict_json(self, pred):
        wire = json.dumps(predicate_to_dict(pred), allow_nan=False)
        assert isinstance(json.loads(wire), dict)

    @settings(max_examples=100, deadline=None)
    @given(predicates)
    def test_double_roundtrip_is_stable(self, pred):
        once = predicate_from_dict(predicate_to_dict(pred))
        twice = predicate_from_dict(predicate_to_dict(once))
        assert predicate_to_dict(once) == predicate_to_dict(twice)
