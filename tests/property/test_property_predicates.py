"""Property-based tests: the predicate algebra over random tiny datasets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration.dataset import Dataset
from repro.exploration.predicate import And, Eq, Not, Or, Range

COLORS = ("red", "blue", "green")


@st.composite
def datasets(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    colors = draw(st.lists(st.sampled_from(COLORS), min_size=n, max_size=n))
    values = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return Dataset(
        {"color": colors, "value": values},
        categorical=["color"],
        category_universe={"color": COLORS},
    )


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(0, 1))
        if choice == 0:
            return Eq("color", draw(st.sampled_from(COLORS)))
        lo = draw(st.floats(min_value=-100, max_value=99, allow_nan=False))
        hi = draw(st.floats(min_value=lo + 0.001, max_value=101, allow_nan=False))
        return Range("value", lo, hi)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(predicates(depth=0))
    if kind == 1:
        return Not(draw(predicates(depth=depth - 1)))
    ops = draw(st.lists(predicates(depth=depth - 1), min_size=1, max_size=3))
    return And(tuple(ops)) if kind == 2 else Or(tuple(ops))


class TestAlgebraicLaws:
    @given(ds=datasets(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_negation_is_complement(self, ds, p):
        np.testing.assert_array_equal(Not(p).mask(ds), ~p.mask(ds))

    @given(ds=datasets(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_double_negation_identity(self, ds, p):
        np.testing.assert_array_equal(Not(Not(p)).mask(ds), p.mask(ds))

    @given(ds=datasets(), p=predicates(), q=predicates())
    @settings(max_examples=100, deadline=None)
    def test_de_morgan(self, ds, p, q):
        left = Not(And((p, q))).mask(ds)
        right = Or((Not(p), Not(q))).mask(ds)
        np.testing.assert_array_equal(left, right)

    @given(ds=datasets(), p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_normalization_preserves_semantics(self, ds, p):
        np.testing.assert_array_equal(p.normalize().mask(ds), p.mask(ds))

    @given(ds=datasets(), p=predicates(), q=predicates())
    @settings(max_examples=100, deadline=None)
    def test_and_commutative(self, ds, p, q):
        np.testing.assert_array_equal(And((p, q)).mask(ds), And((q, p)).mask(ds))

    @given(p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_complement_detection_symmetry(self, p):
        assert Not(p).is_complement_of(p)
        assert p.is_complement_of(Not(p))

    @given(p=predicates())
    @settings(max_examples=100, deadline=None)
    def test_normalization_idempotent(self, p):
        once = p.normalize()
        assert once.normalize() == once


class TestHistogramConservation:
    @given(ds=datasets(), p=predicates())
    @settings(max_examples=80, deadline=None)
    def test_filtered_counts_partition_totals(self, ds, p):
        from repro.exploration.histogram import categorical_histogram

        full = categorical_histogram(ds, "color")
        yes = categorical_histogram(ds, "color", p)
        no = categorical_histogram(ds, "color", Not(p))
        for label in full.labels:
            assert yes.as_dict()[label] + no.as_dict()[label] == full.as_dict()[label]
