"""Property-based tests: dominance and monotonicity of static procedures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.procedures.bonferroni import bonferroni_mask, sidak_mask
from repro.procedures.fdr import benjamini_hochberg_mask, benjamini_yekutieli_mask
from repro.procedures.seqfdr import forward_stop_k
from repro.procedures.stepwise import hochberg_mask, holm_mask, simes_global_p

p_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=60
)
alphas = st.floats(min_value=0.01, max_value=0.3)


class TestDominanceChain:
    """Bonferroni ⊆ Šidák, Bonferroni ⊆ Holm ⊆ Hochberg ⊆ BH; BY ⊆ BH."""

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=120, deadline=None)
    def test_bonferroni_subset_of_sidak(self, p, alpha):
        assert np.all(sidak_mask(p, alpha) | ~bonferroni_mask(p, alpha))

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=120, deadline=None)
    def test_bonferroni_subset_of_holm(self, p, alpha):
        assert np.all(holm_mask(p, alpha) | ~bonferroni_mask(p, alpha))

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=120, deadline=None)
    def test_holm_subset_of_hochberg(self, p, alpha):
        assert np.all(hochberg_mask(p, alpha) | ~holm_mask(p, alpha))

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=120, deadline=None)
    def test_hochberg_subset_of_bh(self, p, alpha):
        assert np.all(benjamini_hochberg_mask(p, alpha) | ~hochberg_mask(p, alpha))

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=120, deadline=None)
    def test_by_subset_of_bh(self, p, alpha):
        assert np.all(
            benjamini_hochberg_mask(p, alpha) | ~benjamini_yekutieli_mask(p, alpha)
        )


class TestStructuralProperties:
    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=100, deadline=None)
    def test_bh_rejections_are_smallest_pvalues(self, p, alpha):
        mask = benjamini_hochberg_mask(p, alpha)
        arr = np.asarray(p)
        if mask.any() and (~mask).any():
            assert arr[mask].max() <= arr[~mask].min()

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=100, deadline=None)
    def test_bh_monotone_in_alpha(self, p, alpha):
        low = benjamini_hochberg_mask(p, alpha / 2)
        high = benjamini_hochberg_mask(p, alpha)
        assert np.all(high | ~low)

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance_of_bh_count(self, p, alpha):
        rng = np.random.default_rng(0)
        shuffled = list(p)
        rng.shuffle(shuffled)
        assert benjamini_hochberg_mask(p, alpha).sum() == benjamini_hochberg_mask(
            shuffled, alpha
        ).sum()

    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=100, deadline=None)
    def test_forward_stop_monotone_in_alpha(self, p, alpha):
        assert forward_stop_k(p, alpha) >= forward_stop_k(p, alpha / 2)

    @given(p=p_vectors)
    @settings(max_examples=100, deadline=None)
    def test_simes_valid_p_value(self, p):
        s = simes_global_p(p)
        assert 0.0 <= s <= 1.0
        # Simes dominates the Bonferroni global test.
        assert s <= min(1.0, len(p) * min(p)) + 1e-12


class TestDecisionMaskSanity:
    @given(p=p_vectors, alpha=alphas)
    @settings(max_examples=60, deadline=None)
    def test_masks_have_right_shape_and_dtype(self, p, alpha):
        for fn in (
            bonferroni_mask,
            sidak_mask,
            holm_mask,
            hochberg_mask,
            benjamini_hochberg_mask,
            benjamini_yekutieli_mask,
        ):
            mask = fn(p, alpha)
            assert mask.shape == (len(p),)
            assert mask.dtype == bool
