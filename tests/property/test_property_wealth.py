"""Property-based tests: the wealth ledger and investing engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.procedures.alpha_investing import (
    AlphaInvesting,
    BetaFarsighted,
    DeltaHopeful,
    EpsilonHybrid,
    GammaFixed,
    PsiSupport,
)
from repro.procedures.alpha_investing.wealth import WealthLedger

alphas = st.floats(min_value=0.005, max_value=0.3)
p_value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=80
)
outcome_lists = st.lists(st.booleans(), min_size=1, max_size=60)

policy_builders = st.sampled_from(
    [
        lambda: BetaFarsighted(0.25),
        lambda: BetaFarsighted(0.9),
        lambda: GammaFixed(5.0),
        lambda: GammaFixed(100.0),
        lambda: DeltaHopeful(10.0),
        lambda: EpsilonHybrid(0.5, 10.0, 10.0),
        lambda: EpsilonHybrid(0.25, 20.0, 5.0, window=8),
        lambda: PsiSupport(0.5, 10.0),
    ]
)


class TestLedgerProperties:
    @given(alpha=alphas, outcomes=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_wealth_never_negative(self, alpha, outcomes):
        ledger = WealthLedger(alpha=alpha)
        for rejected in outcomes:
            budget = ledger.max_affordable_budget() / 2.0
            if budget <= 0:
                break
            ledger.settle(budget, rejected)
            assert ledger.wealth >= 0.0

    @given(alpha=alphas, outcomes=outcome_lists)
    @settings(max_examples=60, deadline=None)
    def test_eq5_bookkeeping_identity(self, alpha, outcomes):
        """W(j) = W(0) + omega*R(j) - sum of charges (while wealth lasts)."""
        ledger = WealthLedger(alpha=alpha)
        rejections = 0
        charges = 0.0
        for rejected in outcomes:
            budget = min(0.4 * ledger.max_affordable_budget(), alpha)
            if budget <= 0:
                break
            ledger.settle(budget, rejected)
            if rejected:
                rejections += 1
            else:
                charges += budget / (1.0 - budget)
        expected = ledger.initial_wealth + ledger.omega * rejections - charges
        assert ledger.wealth == max(expected, 0.0) or abs(
            ledger.wealth - expected
        ) < 1e-9

    @given(alpha=alphas)
    @settings(max_examples=60, deadline=None)
    def test_max_affordable_is_exact_fixed_point(self, alpha):
        ledger = WealthLedger(alpha=alpha)
        budget = ledger.max_affordable_budget()
        assert WealthLedger.charge_for(budget) <= ledger.wealth * (1 + 1e-12)


class TestEngineProperties:
    @given(make_policy=policy_builders, p_values=p_value_lists, alpha=alphas)
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_for_any_stream(self, make_policy, p_values, alpha):
        proc = AlphaInvesting(make_policy(), alpha=alpha)
        for p in p_values:
            before = proc.wealth
            d = proc.test(p)
            # Wealth never negative.
            assert proc.wealth >= 0.0
            # Budgets are feasible and below 1.
            assert 0.0 <= d.level < 1.0
            if not d.exhausted:
                assert d.level / (1.0 - d.level) <= before + 1e-9
            # Rejection iff p <= granted budget (exhausted tests never reject).
            assert d.rejected == (not d.exhausted and p <= d.level)
            # Ledger wiring in the decision record.
            assert d.wealth_after == proc.wealth

    @given(make_policy=policy_builders, p_values=p_value_lists)
    @settings(max_examples=50, deadline=None)
    def test_determinism(self, make_policy, p_values):
        a = AlphaInvesting(make_policy(), alpha=0.05)
        b = AlphaInvesting(make_policy(), alpha=0.05)
        for p in p_values:
            assert a.test(p).rejected == b.test(p).rejected

    @given(p_values=p_value_lists)
    @settings(max_examples=50, deadline=None)
    def test_beta_farsighted_preserves_beta_fraction(self, p_values):
        beta = 0.5
        proc = AlphaInvesting(BetaFarsighted(beta), alpha=0.05)
        for p in p_values:
            before = proc.wealth
            d = proc.test(p)
            if not d.rejected:
                # Clamping at alpha can only make the charge smaller, so
                # the post-acceptance wealth is at least beta * W(j-1).
                assert proc.wealth >= beta * before - 1e-12

    @given(p_values=p_value_lists)
    @settings(max_examples=50, deadline=None)
    def test_reset_restores_initial_behaviour(self, p_values):
        proc = AlphaInvesting(DeltaHopeful(10.0), alpha=0.05)
        first = [proc.test(p).rejected for p in p_values]
        proc.reset()
        second = [proc.test(p).rejected for p in p_values]
        assert first == second
