"""Property: the pipeline envelope is invisible in the decisions.

For random show/star traffic chopped into random pipeline envelopes
(random chunk sizes, both failure policies, ``"$prev"`` star references),
executing through ``ExplorationService.handle`` produces a decision log
**byte-identical** to replaying the same verbs one at a time against a
bare :class:`SessionManager`.  Batching saves round trips; it may never
move, add, or remove a decision — the envelope-level twin of PR 2's
serial-vs-threaded and PR 3's serial-vs-HTTP equivalences.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExplorationService
from repro.api.protocol import PREV
from repro.exploration.dataset import Dataset
from repro.exploration.predicate import Eq
from repro.service import SessionManager

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle")
_SIZES = ("small", "medium", "large")
_ATTRS = ("color", "shape", "size")
_CATEGORY = {"color": _COLORS, "shape": _SHAPES, "size": _SIZES}


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(24680)
    n = 400
    return Dataset(
        {
            "color": rng.choice(_COLORS, size=n),
            "shape": rng.choice(_SHAPES, size=n),
            "size": rng.choice(_SIZES, size=n),
        },
        categorical=list(_ATTRS),
        name="pipeline-property",
    )


_DATASET = _build_dataset()


@st.composite
def gesture(draw):
    """One (target, filter, star-it?) user gesture."""
    target = draw(st.sampled_from(_ATTRS))
    filt_attr = draw(st.sampled_from([a for a in _ATTRS if a != target]))
    category = draw(st.sampled_from(_CATEGORY[filt_attr]))
    starred = draw(st.booleans())
    return (target, Eq(filt_attr, category), starred)


@st.composite
def traffic(draw):
    """Gestures plus a random partition into pipeline envelopes."""
    gestures = draw(st.lists(gesture(), min_size=1, max_size=8))
    # wire commands: show, optionally followed by star($prev)
    n_commands = sum(2 if starred else 1 for _, _, starred in gestures)
    n_chunks = draw(st.integers(min_value=1, max_value=n_commands))
    # chunk boundaries as a sorted sample of cut positions
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(1, n_commands - 1)),
            max_size=n_chunks - 1,
            unique=True,
        )
        if n_commands > 1
        else st.just([])
    )
    policy = draw(st.sampled_from(["abort_on_error", "continue"]))
    return gestures, sorted(cuts), policy


def _wire_commands(session_id: str, gestures) -> list[dict]:
    commands: list[dict] = []
    for target, predicate, starred in gestures:
        commands.append({
            "cmd": "show", "session_id": session_id, "attribute": target,
            "where": {"op": "eq", "column": predicate.column,
                      "value": predicate.value},
        })
        if starred:
            commands.append({"cmd": "star", "session_id": session_id,
                             "hypothesis_id": PREV})
    return commands


@settings(max_examples=25, deadline=None)
@given(traffic())
def test_pipelined_log_byte_identical_to_serial(case):
    gestures, cuts, policy = case

    # -- pipelined, through the full service dispatcher ----------------------
    service = ExplorationService(max_sessions=None)
    service.register_dataset(_DATASET, name="data")
    sid = service.handle_dict(
        {"v": 2, "cmd": "create_session", "dataset": "data"}
    )["result"]["session_id"]
    commands = _wire_commands(sid, gestures)
    bounds = [0] + [c for c in cuts if c < len(commands)] + [len(commands)]
    for start, stop in zip(bounds, bounds[1:]):
        chunk = commands[start:stop]
        if not chunk:
            continue
        envelope = service.handle_dict({
            "v": 2, "cmd": "pipeline", "failure_policy": policy,
            "commands": chunk,
        })
        assert envelope["ok"], envelope
        # a chunk may open with star($prev) whose hypothesis came from the
        # *previous* envelope — $prev does not cross envelopes, by design:
        # those slots fail with PROTOCOL and (under abort) skip the rest.
        # Everything else must succeed.
        for slot in envelope["result"]["slots"]:
            if not slot["ok"]:
                assert slot["error"]["code"] in ("PROTOCOL", "NOT_EXECUTED")

    # -- serial, against a bare manager, mirroring slot outcomes -------------
    manager = SessionManager()
    manager.register_dataset(_DATASET, name="data")
    serial = manager.create_session("data")
    prev_hyp: int | None = None
    aborted = False
    for start, stop in zip(bounds, bounds[1:]):
        prev_hyp = None  # $prev never crosses envelope boundaries
        aborted = False
        for command in commands[start:stop]:
            if aborted:
                continue
            if command["cmd"] == "show":
                result = manager.show(serial, command["attribute"],
                                      where=Eq(command["where"]["column"],
                                               command["where"]["value"]))
                if result.hypothesis is not None:
                    prev_hyp = result.hypothesis.hypothesis_id
            else:  # star($prev)
                if prev_hyp is None:
                    if policy == "abort_on_error":
                        aborted = True
                    continue
                manager.star(serial, prev_hyp)

    assert (service.manager.decision_log_bytes(sid)
            == manager.decision_log_bytes(serial))
