"""Property: the HTTP boundary is invisible in the decisions.

Extends PR 2's serial-vs-threaded decision-log equivalence to the wire:
for hypothesis-generated multi-session traffic, driving the panels
through a live asyncio HTTP server with the blocking client produces
decision logs **byte-identical** to the same traffic run serially,
in-process, against a bare :class:`SessionManager`.  Transport,
serialization and the service dispatcher may add latency — never a
p-value, a wealth update, or a rejection.

One server (module scope) hosts every example; sessions are created and
closed per example, and decisions never depend on shared-cache state, so
examples cannot influence each other.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Client, ExplorationService, ServerThread
from repro.exploration.dataset import Dataset
from repro.exploration.predicate import Eq
from repro.service import SessionManager

_COLORS = ("red", "blue", "green")
_SHAPES = ("circle", "square", "triangle")
_SIZES = ("small", "medium", "large")
_ATTRS = ("color", "shape", "size")
_CATEGORY = {"color": _COLORS, "shape": _SHAPES, "size": _SIZES}


def _build_dataset() -> Dataset:
    rng = np.random.default_rng(97531)
    n = 500
    return Dataset(
        {
            "color": rng.choice(_COLORS, size=n),
            "shape": rng.choice(_SHAPES, size=n),
            "size": rng.choice(_SIZES, size=n),
        },
        categorical=list(_ATTRS),
        name="api-property",
    )


_DATASET = _build_dataset()


@st.composite
def panel(draw):
    target = draw(st.sampled_from(_ATTRS))
    filt_attr = draw(st.sampled_from([a for a in _ATTRS if a != target]))
    category = draw(st.sampled_from(_CATEGORY[filt_attr]))
    return (target, Eq(filt_attr, category))


@st.composite
def traffic(draw):
    """Per-session panel streams plus an interleaved arrival order."""
    n_sessions = draw(st.integers(min_value=1, max_value=3))
    streams = [
        draw(st.lists(panel(), min_size=1, max_size=6))
        for _ in range(n_sessions)
    ]
    slots = [s for s, stream in enumerate(streams) for _ in stream]
    order = draw(st.permutations(slots))
    seen = {s: 0 for s in range(n_sessions)}
    arrival = []
    for s in order:
        arrival.append((s, seen[s]))
        seen[s] += 1
    return streams, arrival


@pytest.fixture(scope="module")
def http_client():
    service = ExplorationService(max_sessions=None)
    service.register_dataset(_DATASET, name="d")
    with ServerThread(service) as server, Client(port=server.port) as client:
        yield client


class TestHttpEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(traffic())
    def test_http_logs_byte_identical_to_serial_inprocess(self, http_client, tr):
        streams, arrival = tr

        # over the wire, in the drawn interleaving
        sids = [http_client.create_session("d") for _ in streams]
        for s, i in arrival:
            target, where = streams[s][i]
            http_client.show(sids[s], target, where=where)
        http_logs = [http_client.decision_log_bytes(sid) for sid in sids]
        for sid in sids:
            http_client.close_session(sid)

        # serially, in-process, against a bare manager
        manager = SessionManager()
        manager.register_dataset(_DATASET, name="d")
        local_sids = [manager.create_session("d") for _ in streams]
        for s, i in arrival:
            target, where = streams[s][i]
            manager.show(local_sids[s], target, where=where)
        local_logs = [manager.decision_log_bytes(sid) for sid in local_sids]

        assert http_logs == local_logs
